#ifndef OTFAIR_CORE_DRIFT_MONITOR_H_
#define OTFAIR_CORE_DRIFT_MONITOR_H_

#include <string>
#include <vector>

#include "common/byte_io.h"
#include "common/result.h"
#include "core/repair_plan.h"

namespace otfair::core {

/// Drift state of one (u, s, k) channel.
struct ChannelDrift {
  int u = 0;
  int s = 0;
  size_t k = 0;
  /// Values streamed through this channel so far.
  size_t count = 0;
  /// Fraction of streamed values outside the design-time research range.
  double out_of_range_rate = 0.0;
  /// 1-Wasserstein distance between the streamed empirical distribution
  /// (binned on the design grid) and the design-time marginal mu_{u,s,k},
  /// normalized by the grid span — 0 means the stream matches the design
  /// distribution, 1 means total separation across the support.
  double w1_normalized = 0.0;
};

/// Report over all channels plus the overall verdict.
struct DriftReport {
  std::vector<ChannelDrift> channels;
  /// Worst normalized W1 across channels with enough data.
  double worst_w1 = 0.0;
  /// Worst out-of-range rate across channels with enough data.
  double worst_out_of_range = 0.0;
  /// True when any watched channel exceeded a threshold.
  bool drifted = false;

  std::string ToString() const;
};

/// Options for drift detection.
struct DriftMonitorOptions {
  /// Channels with fewer streamed values than this are not judged.
  size_t min_count = 200;
  /// Flag when normalized W1 exceeds this.
  double w1_threshold = 0.10;
  /// Flag when the out-of-range rate exceeds this.
  double out_of_range_threshold = 0.05;
};

/// Watches an archival stream for violations of the stationarity assumption
/// the paper's off-sample repair rests on (§IV requirement 2, §VI).
///
/// The repair plan is designed once on the research data; if the archive
/// later drifts (population ages, working hours shift, ...) the plan
/// silently degrades — the paper observes exactly this on the Adult data.
/// `DriftMonitor` accumulates, per (u, s, k) channel, a histogram of the
/// streamed values on the design grid plus an out-of-range counter, and
/// compares the streamed empirical distribution against the design-time
/// interpolated marginal with a normalized 1-Wasserstein distance. When a
/// channel exceeds the thresholds the operator should re-collect research
/// data and re-design.
///
/// Observe() is O(1) per value; Report() is O(n_Q) per channel.
class DriftMonitor {
 public:
  /// The monitor holds its own copy of the design marginals/grids.
  static common::Result<DriftMonitor> Create(const RepairPlanSet& plans,
                                             const DriftMonitorOptions& options = {});

  /// Records one streamed archival value of channel (u, s, k). Call it with
  /// the same arguments as OffSampleRepairer::RepairValue.
  void Observe(int u, int s, size_t k, double x);

  /// Current drift assessment.
  DriftReport Report() const;

  /// Snapshot form of Report() for incremental accumulation: Observe() is
  /// already O(1) per value, and the histogram state is pure integer
  /// counts, so judging after every micro-batch reproduces the one-shot
  /// batch report exactly — same counts, same W1, same verdict. The
  /// serving layer polls this under live traffic.
  DriftReport SnapshotReport() const { return Report(); }

  /// Folds another monitor's accumulated counts into this one. The two
  /// monitors must have been created from the same plan set (same
  /// channels, same grids); the serving layer shards observation across
  /// monitors and merges on snapshot. Commutative integer addition, so
  /// merge order cannot change the combined report.
  common::Status MergeFrom(const DriftMonitor& other);

  /// Drops all accumulated counts (e.g. after a re-design).
  void Reset();

  /// Appends only the observed accumulators (shape header + per-channel
  /// counts/total/out_of_range) to `writer`. Grids and design pmfs are NOT
  /// serialized — at restore time they are rebuilt from the plan, which is
  /// checkpointed alongside, so the counts can be validated against real
  /// geometry instead of trusting bytes on disk.
  void SerializeCounts(common::ByteWriter& writer) const;

  /// Folds accumulators previously written by SerializeCounts into this
  /// monitor (integer addition, same algebra as MergeFrom — restoring into
  /// a freshly created monitor reproduces the serialized state exactly).
  /// Returns kInvalidArgument on any shape mismatch, truncation, or
  /// internally inconsistent counts, leaving this monitor untouched.
  common::Status RestoreCounts(common::ByteReader& reader);

 private:
  struct ChannelState {
    std::vector<double> design_pmf;   // mu_{u,s,k} on the grid
    std::vector<double> grid;         // grid points
    std::vector<size_t> counts;       // streamed histogram (per grid state)
    // Cached grid geometry: Observe is the serving hot path (8 calls per
    // repaired row), so the bounds and the reciprocal spacing are
    // precomputed instead of re-derived (two divisions) per value.
    double lo = 0.0;
    double hi = 0.0;
    double inv_step = 0.0;
    size_t total = 0;
    size_t out_of_range = 0;
  };

  DriftMonitor(size_t dim, size_t s_levels, size_t u_levels,
               const DriftMonitorOptions& options)
      : dim_(dim), s_levels_(s_levels), u_levels_(u_levels), options_(options) {}

  ChannelState& StateFor(int u, int s, size_t k);
  const ChannelState& StateFor(int u, int s, size_t k) const;

  size_t dim_ = 0;
  size_t s_levels_ = 2;
  size_t u_levels_ = 2;
  DriftMonitorOptions options_;
  std::vector<ChannelState> states_;  // index: (u * |S| + s) * dim + k
};

}  // namespace otfair::core

#endif  // OTFAIR_CORE_DRIFT_MONITOR_H_
