#ifndef OTFAIR_CORE_GEOMETRIC_H_
#define OTFAIR_CORE_GEOMETRIC_H_

#include <memory>

#include "common/result.h"
#include "data/dataset.h"
#include "ot/solver.h"

namespace otfair::core {

/// Options for the geometric (on-sample) repair baseline.
struct GeometricOptions {
  /// Geodesic position t (paper Eqs. 8-9) for the binary |S| = 2 case;
  /// 0.5 meets both classes at the fair barycentre, matching the
  /// distributional repair's default target. Ignored when `lambdas` is
  /// set.
  double t = 0.5;
  /// Barycentric class weights for the multi-group extension (one per s
  /// level, normalized internally). Empty selects {1 - t, t} for |S| = 2
  /// and uniform weights otherwise.
  std::vector<double> lambdas;
  /// Minimum rows per (u, s) group.
  size_t min_group_size = 2;
  /// OT backend for the empirical coupling pi* between the s-conditional
  /// samples. Null means `ot::DefaultSolver()` (monotone — exact here and
  /// O(n)); injecting "exact" or "sinkhorn" from the registry reproduces
  /// the baseline under alternative solvers.
  std::shared_ptr<const ot::Solver> solver;
};

/// The geometric OT repair of Del Barrio et al. (ICML 2019), applied per
/// (u, k) channel as in paper §III-B — the baseline Tables I and II compare
/// against:
///
///     x'_{0,i} = (1 - t) x_{0,i} + n_0 t     * sum_j pi*_{ij} x_{1,j}   (Eq. 8)
///     x'_{1,j} = n_1 (1 - t) * sum_i pi*_{ij} x_{0,i} + t x_{1,j}       (Eq. 9)
///
/// with pi* the optimal coupling between the *empirical* s-conditional
/// measures of the research data (computed here by the 1-D monotone
/// solver, which is exact for the squared-Euclidean cost). For |S| > 2
/// classes the same construction moves every record toward the
/// lambda-weighted empirical barycenter:
///
///     x'_{s,i} = lambda_s x_{s,i}
///              + sum_{s' != s} lambda_{s'} n_s sum_j pi*^{s->s'}_{ij} x_{s',j}
///
/// which reduces to Eqs. 8-9 at |S| = 2 (that binary path is preserved
/// bit-for-bit).
///
/// This repair is defined point-wise on the research sample, so — as the
/// paper stresses — it cannot repair off-sample (archival) points; it only
/// returns a repaired copy of `research`.
common::Result<data::Dataset> GeometricRepairDataset(const data::Dataset& research,
                                                     const GeometricOptions& options = {});

}  // namespace otfair::core

#endif  // OTFAIR_CORE_GEOMETRIC_H_
