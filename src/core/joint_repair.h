#ifndef OTFAIR_CORE_JOINT_REPAIR_H_
#define OTFAIR_CORE_JOINT_REPAIR_H_

#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "core/support_grid.h"
#include "data/dataset.h"
#include "ot/plan.h"
#include "ot/solver.h"
#include "stats/sampling.h"

namespace otfair::core {

/// Options for joint (bivariate) repair design.
struct JointDesignOptions {
  /// Grid states per axis; the OT problems run on n_q^2 product states, so
  /// keep this moderate (the curse of dimensionality the paper's
  /// per-feature stratification avoids, quantified here).
  size_t n_q = 24;
  /// Barycentre position along the (entropic) geodesic for |S| = 2;
  /// ignored when `lambdas` is set.
  double target_t = 0.5;
  /// Barycentric class weights (one per s level, normalized internally).
  /// Empty selects {1 - target_t, target_t} for |S| = 2 and uniform
  /// weights otherwise.
  std::vector<double> lambdas;
  /// Entropic regularization for the 2-D barycenter and plans. Exact 2-D
  /// OT on n_q^2 states is prohibitively slow for n_q beyond ~12, which is
  /// itself part of the ablation's message.
  double epsilon = 0.05;
  size_t max_iterations = 2000;
  double tolerance = 1e-8;
  size_t min_group_size = 8;
  /// KDE bandwidth per axis; 0 = Silverman.
  double bandwidth = 0.0;
  /// Optional OT backend for the per-s plans mu_s -> nu on the flattened
  /// product grid. Null (default) uses the built-in separable-kernel
  /// entropic path, which exploits the product structure for an
  /// O(n_q^3)-per-application kernel. A registry backend (e.g. "exact"
  /// for cross-validation) instead solves the dense n_q^2-state problem
  /// under the true 2-D squared-Euclidean cost — only sensible for
  /// moderate n_q, and it must support general costs ("monotone" is
  /// rejected, being 1-D only). The barycentre itself is always entropic.
  std::shared_ptr<const ot::Solver> solver;
};

/// Joint repair of one feature *pair* (k1, k2): the correlation-aware
/// alternative to the paper's per-feature stratification (§VI).
///
/// Design mirrors Algorithm 1 but on the product support Q_x × Q_y per
/// u-stratum: 2-D KDE marginals, an entropic W2 barycentre over the
/// flattened states (iterative Bregman projections with a separable Gibbs
/// kernel), and entropic plans mu_s -> nu. Repair mirrors Algorithm 2 with
/// two independent Bernoulli quantization draws (one per axis) and one
/// multinomial draw from the joint plan row, so both coordinates of a
/// record move *coherently* — preserving (indeed equalizing) the
/// s-conditional correlation structure that per-feature repair leaves
/// behind.
///
/// Costs: design is O(iterations * n_q^3) per (u, s); repair is O(1) per
/// record after alias-table setup. The solved coupling is nominally
/// n_q^2 x n_q^2 per (u, s) — the quadratic blow-up the paper's d-fold
/// stratification sidesteps — but only its truncated CSR support is
/// retained, so the resident artifact scales with the entropic band.
class JointPairRepairer {
 public:
  /// Designs the joint repair for columns (k1, k2) of `research`.
  static common::Result<JointPairRepairer> Design(const data::Dataset& research, size_t k1,
                                                  size_t k2,
                                                  const JointDesignOptions& options = {});

  /// Repairs one (x, y) value pair of stratum (u, s).
  std::pair<double, double> RepairPair(int u, int s, double x, double y,
                                       common::Rng& rng) const;

  /// Repairs columns (k1, k2) of every row (other columns untouched).
  common::Result<data::Dataset> RepairDataset(const data::Dataset& dataset,
                                              uint64_t seed) const;

  size_t k1() const { return k1_; }
  size_t k2() const { return k2_; }

 private:
  struct StratumPlan {
    SupportGrid grid_x;
    SupportGrid grid_y;
    /// Joint plans per s over flattened states (row = source state
    /// a * n_qy + b, column = target state), stored CSR: the entropic
    /// coupling concentrates on a band, so truncated extraction cuts the
    /// n_q^2 x n_q^2 artifact to its effective support.
    std::vector<ot::SparsePlan> plan;  // indexed by s
    /// Alias tables per plan row over the row's CSR support (empty
    /// optional = massless row); sampled local indices map to flattened
    /// states through the row's column indices.
    std::vector<std::vector<std::optional<stats::AliasTable>>> alias;
    std::vector<std::vector<size_t>> fallback_row;
  };

  JointPairRepairer() = default;

  const StratumPlan& PlanFor(int u) const;

  size_t k1_ = 0;
  size_t k2_ = 0;
  size_t s_levels_ = 2;
  std::vector<StratumPlan> strata_;  // one per u stratum
};

}  // namespace otfair::core

#endif  // OTFAIR_CORE_JOINT_REPAIR_H_
