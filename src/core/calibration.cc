#include "core/calibration.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"
#include "core/marginals.h"
#include "core/support_grid.h"
#include "ot/monotone.h"

namespace otfair::core {

using common::Result;
using common::Rng;
using common::Status;

namespace {

/// Normalized 1-Wasserstein distance between two channel marginals: W1
/// divided by the span of their combined support, so 0 = identical and 1 =
/// mass fully separated across the range.
Result<double> NormalizedW1(const ot::DiscreteMeasure& a, const ot::DiscreteMeasure& b) {
  auto w1 = ot::Wasserstein1D(a, b, 1);
  if (!w1.ok()) return w1.status();
  const double lo = std::min(a.support().front(), b.support().front());
  const double hi = std::max(a.support().back(), b.support().back());
  const double span = hi - lo;
  return span > 0.0 ? *w1 / span : 0.0;
}

}  // namespace

Result<ResearchSufficiency> CheckResearchSufficiency(const data::Dataset& research,
                                                     const SufficiencyOptions& options) {
  if (research.empty()) return Status::InvalidArgument("empty research dataset");
  if (options.splits == 0) return Status::InvalidArgument("splits must be positive");
  if (!(options.threshold > 0.0)) return Status::InvalidArgument("threshold must be positive");

  Rng rng(options.seed);
  ResearchSufficiency verdict;
  verdict.sufficient = true;

  for (const data::GroupKey& group : research.Groups()) {
    {
      const std::vector<size_t> indices = research.GroupIndices(group);
      for (size_t k = 0; k < research.dim(); ++k) {
        double instability = 1.0;  // pessimistic default: not estimable
        if (indices.size() >= 2 * options.min_group_size) {
          const std::vector<double> column = research.FeatureColumn(k, indices);
          auto grid = SupportGrid::FromSamples(column, options.n_q);
          if (!grid.ok()) return grid.status();
          double acc = 0.0;
          size_t used = 0;
          for (size_t split = 0; split < options.splits; ++split) {
            const std::vector<size_t> perm = rng.Permutation(column.size());
            const size_t half = column.size() / 2;
            std::vector<double> first;
            std::vector<double> second;
            first.reserve(half);
            second.reserve(column.size() - half);
            for (size_t i = 0; i < column.size(); ++i)
              (i < half ? first : second).push_back(column[perm[i]]);
            auto ma = InterpolateMarginal(first, *grid);
            auto mb = InterpolateMarginal(second, *grid);
            if (!ma.ok() || !mb.ok()) continue;
            auto w1 = NormalizedW1(*ma, *mb);
            if (!w1.ok()) continue;
            acc += *w1;
            ++used;
          }
          if (used > 0) instability = acc / static_cast<double>(used);
        }
        verdict.instability.push_back(instability);
        if (instability > verdict.worst_instability) {
          verdict.worst_instability = instability;
          verdict.worst_channel = "u=" + std::to_string(group.u) +
                                  ",s=" + std::to_string(group.s) + ",k=" + std::to_string(k);
        }
        if (instability > options.threshold) verdict.sufficient = false;
      }
    }
  }
  return verdict;
}

Result<size_t> SelectSupportResolution(const data::Dataset& research,
                                       const ResolutionOptions& options) {
  if (research.empty()) return Status::InvalidArgument("empty research dataset");
  if (options.min_n_q < 2 || options.max_n_q < options.min_n_q)
    return Status::InvalidArgument("resolution bounds invalid");
  if (!(options.tolerance > 0.0)) return Status::InvalidArgument("tolerance must be positive");

  for (size_t n_q = options.min_n_q; n_q < options.max_n_q; n_q *= 2) {
    const size_t refined = std::min(2 * n_q, options.max_n_q);
    double worst = 0.0;
    bool estimable = true;
    for (const data::GroupKey& group : research.Groups()) {
      if (!estimable) break;
      {
        const std::vector<size_t> indices = research.GroupIndices(group);
        if (indices.size() < options.min_group_size) {
          estimable = false;
          break;
        }
        for (size_t k = 0; k < research.dim(); ++k) {
          const std::vector<double> column = research.FeatureColumn(k, indices);
          auto coarse_grid = SupportGrid::FromSamples(column, n_q);
          auto fine_grid = SupportGrid::FromSamples(column, refined);
          if (!coarse_grid.ok() || !fine_grid.ok()) return coarse_grid.status();
          auto coarse = InterpolateMarginal(column, *coarse_grid);
          auto fine = InterpolateMarginal(column, *fine_grid);
          if (!coarse.ok()) return coarse.status();
          if (!fine.ok()) return fine.status();
          auto w1 = NormalizedW1(*coarse, *fine);
          if (!w1.ok()) return w1.status();
          worst = std::max(worst, *w1);
        }
      }
    }
    if (!estimable)
      return Status::FailedPrecondition("research group too small for calibration");
    if (worst < options.tolerance) return n_q;
  }
  return options.max_n_q;
}

}  // namespace otfair::core
