#include "core/drift_monitor.h"

#include <cmath>
#include <sstream>

#include "common/check.h"
#include "common/string_util.h"

namespace otfair::core {

using common::Result;
using common::Status;

std::string DriftReport::ToString() const {
  std::ostringstream os;
  os << (drifted ? "DRIFT DETECTED" : "stationary") << "  worst W1=" << common::FormatDouble(worst_w1, 4)
     << "  worst out-of-range=" << common::FormatDouble(worst_out_of_range, 4) << "\n";
  for (const ChannelDrift& c : channels) {
    os << "  (u=" << c.u << ", s=" << c.s << ", k=" << c.k << ") n=" << c.count
       << "  W1=" << common::FormatDouble(c.w1_normalized, 4)
       << "  oor=" << common::FormatDouble(c.out_of_range_rate, 4) << "\n";
  }
  return os.str();
}

Result<DriftMonitor> DriftMonitor::Create(const RepairPlanSet& plans,
                                          const DriftMonitorOptions& options) {
  Status valid = plans.Validate(1e-5);
  if (!valid.ok()) return valid;
  if (options.min_count == 0) return Status::InvalidArgument("min_count must be positive");
  DriftMonitor monitor(plans.dim(), plans.s_levels(), plans.u_levels(), options);
  monitor.states_.resize(plans.u_levels() * plans.s_levels() * plans.dim());
  for (size_t u = 0; u < plans.u_levels(); ++u) {
    for (size_t s = 0; s < plans.s_levels(); ++s) {
      for (size_t k = 0; k < plans.dim(); ++k) {
        const ChannelPlan& channel = plans.At(static_cast<int>(u), k);
        ChannelState& state =
            monitor.StateFor(static_cast<int>(u), static_cast<int>(s), k);
        state.grid = channel.grid.points();
        state.design_pmf = channel.marginal[s].weights();
        state.counts.assign(state.grid.size(), 0);
        state.lo = state.grid.front();
        state.hi = state.grid.back();
        const double step =
            (state.hi - state.lo) / static_cast<double>(state.grid.size() - 1);
        state.inv_step = step > 0.0 ? 1.0 / step : 0.0;
      }
    }
  }
  return monitor;
}

DriftMonitor::ChannelState& DriftMonitor::StateFor(int u, int s, size_t k) {
  OTFAIR_CHECK(u >= 0 && static_cast<size_t>(u) < u_levels_);
  OTFAIR_CHECK(s >= 0 && static_cast<size_t>(s) < s_levels_);
  OTFAIR_CHECK_LT(k, dim_);
  return states_[(static_cast<size_t>(u) * s_levels_ + static_cast<size_t>(s)) * dim_ + k];
}

const DriftMonitor::ChannelState& DriftMonitor::StateFor(int u, int s, size_t k) const {
  return const_cast<DriftMonitor*>(this)->StateFor(u, s, k);
}

void DriftMonitor::Observe(int u, int s, size_t k, double x) {
  ChannelState& state = StateFor(u, s, k);
  ++state.total;
  if (x < state.lo || x > state.hi) ++state.out_of_range;
  // Nearest grid state (uniform spacing, precomputed reciprocal).
  double offset = (x - state.lo) * state.inv_step;
  if (offset < 0.0) offset = 0.0;
  size_t idx = static_cast<size_t>(offset + 0.5);
  if (idx >= state.grid.size()) idx = state.grid.size() - 1;
  ++state.counts[idx];
}

DriftReport DriftMonitor::Report() const {
  DriftReport report;
  for (size_t u = 0; u < u_levels_; ++u) {
    for (size_t s = 0; s < s_levels_; ++s) {
      for (size_t k = 0; k < dim_; ++k) {
        const ChannelState& state = StateFor(static_cast<int>(u), static_cast<int>(s), k);
        ChannelDrift drift;
        drift.u = static_cast<int>(u);
        drift.s = static_cast<int>(s);
        drift.k = k;
        drift.count = state.total;
        if (state.total > 0) {
          drift.out_of_range_rate =
              static_cast<double>(state.out_of_range) / static_cast<double>(state.total);
          // W1 between pmfs on a shared 1-D grid = step * sum_q |CDF gap|.
          const double span = state.grid.back() - state.grid.front();
          const double step = span / static_cast<double>(state.grid.size() - 1);
          double cum_design = 0.0;
          double cum_stream = 0.0;
          double w1 = 0.0;
          for (size_t q = 0; q < state.grid.size(); ++q) {
            cum_design += state.design_pmf[q];
            cum_stream +=
                static_cast<double>(state.counts[q]) / static_cast<double>(state.total);
            w1 += std::fabs(cum_design - cum_stream) * step;
          }
          drift.w1_normalized = span > 0.0 ? w1 / span : 0.0;
        }
        if (state.total >= options_.min_count) {
          report.worst_w1 = std::max(report.worst_w1, drift.w1_normalized);
          report.worst_out_of_range =
              std::max(report.worst_out_of_range, drift.out_of_range_rate);
          if (drift.w1_normalized > options_.w1_threshold ||
              drift.out_of_range_rate > options_.out_of_range_threshold) {
            report.drifted = true;
          }
        }
        report.channels.push_back(drift);
      }
    }
  }
  return report;
}

common::Status DriftMonitor::MergeFrom(const DriftMonitor& other) {
  if (dim_ != other.dim_ || s_levels_ != other.s_levels_ || u_levels_ != other.u_levels_ ||
      states_.size() != other.states_.size())
    return Status::InvalidArgument("cannot merge drift monitors of different shapes");
  for (size_t i = 0; i < states_.size(); ++i) {
    ChannelState& dst = states_[i];
    const ChannelState& src = other.states_[i];
    if (dst.counts.size() != src.counts.size() || dst.grid != src.grid ||
        dst.design_pmf != src.design_pmf)
      return Status::InvalidArgument(
          "cannot merge drift monitors built from different plan sets");
    for (size_t q = 0; q < dst.counts.size(); ++q) dst.counts[q] += src.counts[q];
    dst.total += src.total;
    dst.out_of_range += src.out_of_range;
  }
  return Status::Ok();
}

void DriftMonitor::Reset() {
  for (ChannelState& state : states_) {
    state.counts.assign(state.counts.size(), 0);
    state.total = 0;
    state.out_of_range = 0;
  }
}

void DriftMonitor::SerializeCounts(common::ByteWriter& writer) const {
  writer.U64(dim_);
  writer.U64(s_levels_);
  writer.U64(u_levels_);
  writer.U64(states_.size());
  for (const ChannelState& state : states_) {
    writer.U64(state.counts.size());
    // Grid bounds fingerprint the design the counts were binned against:
    // a same-shaped monitor built from a DIFFERENT plan set must refuse
    // the payload rather than reinterpret it on the wrong grid.
    writer.F64(state.lo);
    writer.F64(state.hi);
    for (size_t c : state.counts) writer.U64(c);
    writer.U64(state.total);
    writer.U64(state.out_of_range);
  }
}

common::Status DriftMonitor::RestoreCounts(common::ByteReader& reader) {
  uint64_t dim = 0, s_levels = 0, u_levels = 0, n_states = 0;
  if (!reader.U64(&dim) || !reader.U64(&s_levels) || !reader.U64(&u_levels) ||
      !reader.U64(&n_states))
    return Status::InvalidArgument("drift counts: truncated header");
  if (dim != dim_ || s_levels != s_levels_ || u_levels != u_levels_ ||
      n_states != states_.size())
    return Status::InvalidArgument(
        "drift counts: shape does not match the monitor's plan set");

  // Parse and validate fully into scratch before mutating any state.
  struct Parsed {
    std::vector<uint64_t> counts;
    uint64_t total = 0;
    uint64_t out_of_range = 0;
  };
  std::vector<Parsed> parsed(states_.size());
  for (size_t i = 0; i < states_.size(); ++i) {
    uint64_t n = 0;
    if (!reader.U64(&n)) return Status::InvalidArgument("drift counts: truncated channel");
    if (n != states_[i].counts.size())
      return Status::InvalidArgument("drift counts: grid size mismatch");
    double lo = 0.0, hi = 0.0;
    if (!reader.F64(&lo) || !reader.F64(&hi))
      return Status::InvalidArgument("drift counts: truncated channel");
    if (lo != states_[i].lo || hi != states_[i].hi)
      return Status::InvalidArgument(
          "drift counts: grid bounds do not match the monitor's plan set");
    if (!reader.Fits(n, sizeof(uint64_t)))
      return Status::InvalidArgument("drift counts: truncated channel");
    parsed[i].counts.resize(static_cast<size_t>(n));
    if (!reader.U64s(parsed[i].counts.data(), parsed[i].counts.size()) ||
        !reader.U64(&parsed[i].total) || !reader.U64(&parsed[i].out_of_range))
      return Status::InvalidArgument("drift counts: truncated channel");
    uint64_t sum = 0;
    for (uint64_t c : parsed[i].counts) {
      if (c > parsed[i].total || sum > parsed[i].total - c)
        return Status::InvalidArgument("drift counts: channel counts exceed total");
      sum += c;
    }
    if (sum != parsed[i].total || parsed[i].out_of_range > parsed[i].total)
      return Status::InvalidArgument("drift counts: inconsistent channel totals");
  }

  for (size_t i = 0; i < states_.size(); ++i) {
    ChannelState& state = states_[i];
    for (size_t q = 0; q < state.counts.size(); ++q)
      state.counts[q] += static_cast<size_t>(parsed[i].counts[q]);
    state.total += static_cast<size_t>(parsed[i].total);
    state.out_of_range += static_cast<size_t>(parsed[i].out_of_range);
  }
  return Status::Ok();
}

}  // namespace otfair::core
