#ifndef OTFAIR_CORE_SUPPORT_GRID_H_
#define OTFAIR_CORE_SUPPORT_GRID_H_

#include <cstddef>
#include <vector>

#include "common/result.h"

namespace otfair::core {

/// The uniform interpolated support Q of Algorithm 1 (lines 3-5):
///
///     zeta_i = (n_Q - i)/(n_Q - 1) * min(X) + (i - 1)/(n_Q - 1) * max(X)
///
/// i.e. n_Q equally spaced states spanning the research-data range of one
/// (u, k) channel. Also implements the quantization step of Algorithm 2
/// (lines 5-6): locating an archival value's round-down state and the
/// interpolation ratio tau of Eq. 14.
class SupportGrid {
 public:
  SupportGrid() = default;

  /// Grid of `n` points spanning [lo, hi]; requires n >= 2 and hi > lo
  /// (a degenerate range is widened symmetrically by `kDegenerateHalfWidth`
  /// so downstream OT stays well-posed).
  static common::Result<SupportGrid> Create(double lo, double hi, size_t n);

  /// Grid spanning the sample range (paper line 4 uses min/max of the
  /// research channel).
  static common::Result<SupportGrid> FromSamples(const std::vector<double>& samples, size_t n);

  size_t size() const { return points_.size(); }
  double lo() const { return points_.front(); }
  double hi() const { return points_.back(); }
  double step() const { return step_; }
  const std::vector<double>& points() const { return points_; }
  double point(size_t i) const { return points_[i]; }

  /// Quantization of one value (Algorithm 2 lines 5-6).
  struct Location {
    /// Round-down state index q with zeta_q <= x < zeta_{q+1}.
    size_t lower = 0;
    /// tau = (x - zeta_q) / (zeta_{q+1} - zeta_q) in [0, 1) (Eq. 14).
    double tau = 0.0;
    /// x fell outside [lo, hi] and was clamped. The paper assumes archival
    /// points lie in the research range (§IV-B); clamping is the documented
    /// out-of-range policy and callers can count these events.
    bool clamped = false;
  };

  /// Locates x on the grid. O(1) (uniform spacing).
  Location Locate(double x) const;

 private:
  explicit SupportGrid(std::vector<double> points);

  std::vector<double> points_;
  double step_ = 0.0;
};

}  // namespace otfair::core

#endif  // OTFAIR_CORE_SUPPORT_GRID_H_
