#ifndef OTFAIR_CORE_REPAIR_PLAN_H_
#define OTFAIR_CORE_REPAIR_PLAN_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/support_grid.h"
#include "ot/measure.h"
#include "ot/plan.h"

namespace otfair::core {

/// Everything Algorithm 1 produces for one (u, k) channel: the interpolated
/// support Q_{u,k}, the |S| KDE-interpolated s-conditional marginals
/// mu_{u,s,k}, the barycentric target nu_{u,k}, and the |S| OT plans
/// pi*_{u,s,k} in P(Q x Q) (rows: source states, columns: target states).
/// The paper's binary formulation is |S| = 2; `marginal` and `plan` are
/// indexed by s-level and sized at design/load time.
///
/// Plans are stored in CSR form (`ot::SparsePlan`): the monotone backend
/// produces at most 2 n_Q - 1 staircase entries per plan, so the artifact
/// is O(n_Q) instead of O(n_Q^2) per channel — the representation that
/// makes n_Q >= 4096 grids affordable.
struct ChannelPlan {
  SupportGrid grid;
  std::vector<ot::DiscreteMeasure> marginal;  // indexed by s; size |S|
  ot::DiscreteMeasure barycenter;
  std::vector<ot::SparsePlan> plan;           // indexed by s; n_Q x n_Q CSR

  size_t s_levels() const { return marginal.size(); }

  /// Structural invariants: square plans matching the grid size, plan
  /// marginals consistent with `marginal` (row sums) and `barycenter`
  /// (column sums) within `tolerance`. Exercised by tests and after
  /// deserialization.
  common::Status Validate(double tolerance = 1e-6) const;
};

/// Resolves user-supplied barycentric class weights into the normalized
/// per-level lambdas the repair stages consume. Empty input selects the
/// default — the paper's {1 - t, t} geodesic for |S| = 2 and the uniform
/// fair barycentre 1/|S| otherwise; explicit weights must carry one
/// non-negative entry per s level (not all zero) and come back normalized
/// to sum to one. Shared by the 1-D designer, the geometric baseline and
/// the joint repairer so the weighting contract lives in one place.
common::Result<std::vector<double>> ResolveLambdas(const std::vector<double>& lambdas,
                                                   double t, size_t s_levels);

/// The complete output of repair design: one ChannelPlan per
/// (u, k) in {0..|U|-1} x {1..d}, plus the design metadata needed to apply
/// it (paper Algorithm 1 output, consumed by Algorithm 2).
class RepairPlanSet {
 public:
  RepairPlanSet() = default;
  RepairPlanSet(size_t dim, std::vector<std::string> feature_names, size_t s_levels = 2,
                size_t u_levels = 2);

  size_t dim() const { return dim_; }
  size_t s_levels() const { return s_levels_; }
  size_t u_levels() const { return u_levels_; }
  const std::vector<std::string>& feature_names() const { return feature_names_; }

  ChannelPlan& At(int u, size_t k);
  const ChannelPlan& At(int u, size_t k) const;

  /// Barycentre position t used at design time (0.5 = the fair
  /// barycentre). Binary-era metadata: for |S| = 2 it is the pairwise
  /// geodesic position the designer actually used (lambdas()[1] up to
  /// normalization roundoff); for |S| > 2 it is retained for reporting
  /// but lambdas() is the source of truth.
  double target_t() const { return target_t_; }
  void set_target_t(double t) { target_t_ = t; }

  /// Barycentric weights lambda_s (size |S|, summing to one): the repair
  /// target is the lambda-weighted W2 barycenter of the s-conditionals.
  /// Defaults to the binary {1 - t, t}.
  const std::vector<double>& lambdas() const { return lambdas_; }
  common::Status set_lambdas(std::vector<double> lambdas);

  /// Validates every channel (see ChannelPlan::Validate).
  common::Status Validate(double tolerance = 1e-6) const;

  /// Binary persistence: a designed plan is a deployable artifact — design
  /// once on the research data, then ship the file to the systems that
  /// repair archival torrents. Format v3: magic/version header, dims,
  /// |U|/|S| level counts and barycentric lambdas, then per-channel grids,
  /// marginals, barycenters and CSR plans (row offsets, column indices,
  /// values; little-endian). Version-1 files (dense binary plans) and
  /// version-2 files (binary CSR plans) still load, mapping to
  /// |S| = |U| = 2 with lambdas {1 - t, t}.
  /// File writes are atomic (write-temp + fsync + rename), so a crash
  /// mid-save leaves the previous plan file intact; reads retry EINTR and
  /// short reads. Loading validates every length field against the bytes
  /// actually present before allocating, so truncated, oversized or
  /// bit-flipped files come back as Status errors — never a crash or an
  /// out-of-bounds read.
  common::Status SaveToFile(const std::string& path) const;
  static common::Result<RepairPlanSet> LoadFromFile(const std::string& path);

  /// The same v3 byte format, in memory: SaveToFile is exactly
  /// SerializeToString + atomic write, and ParseFromBuffer is the single
  /// parser behind LoadFromFile, checkpoint recovery, and the fuzzers.
  /// `context` labels error messages (a path or "checkpoint").
  std::string SerializeToString() const;
  static common::Result<RepairPlanSet> ParseFromBuffer(const char* data, size_t size,
                                                       const std::string& context);

 private:
  size_t dim_ = 0;
  size_t s_levels_ = 2;
  size_t u_levels_ = 2;
  double target_t_ = 0.5;
  std::vector<double> lambdas_ = {0.5, 0.5};
  std::vector<std::string> feature_names_;
  std::vector<ChannelPlan> channels_;  // index: u * dim_ + k
};

}  // namespace otfair::core

#endif  // OTFAIR_CORE_REPAIR_PLAN_H_
