#ifndef OTFAIR_CORE_REPAIR_PLAN_H_
#define OTFAIR_CORE_REPAIR_PLAN_H_

#include <array>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/support_grid.h"
#include "ot/measure.h"
#include "ot/plan.h"

namespace otfair::core {

/// Everything Algorithm 1 produces for one (u, k) channel: the interpolated
/// support Q_{u,k}, the two KDE-interpolated s-conditional marginals
/// mu_{u,s,k}, the barycentric target nu_{u,k}, and the two OT plans
/// pi*_{u,s,k} in P(Q x Q) (rows: source states, columns: target states).
///
/// Plans are stored in CSR form (`ot::SparsePlan`): the monotone backend
/// produces at most 2 n_Q - 1 staircase entries per plan, so the artifact
/// is O(n_Q) instead of O(n_Q^2) per channel — the representation that
/// makes n_Q >= 4096 grids affordable.
struct ChannelPlan {
  SupportGrid grid;
  std::array<ot::DiscreteMeasure, 2> marginal;   // indexed by s
  ot::DiscreteMeasure barycenter;
  std::array<ot::SparsePlan, 2> plan;            // indexed by s; n_Q x n_Q CSR

  /// Structural invariants: square plans matching the grid size, plan
  /// marginals consistent with `marginal` (row sums) and `barycenter`
  /// (column sums) within `tolerance`. Exercised by tests and after
  /// deserialization.
  common::Status Validate(double tolerance = 1e-6) const;
};

/// The complete output of repair design: one ChannelPlan per
/// (u, k) in {0, 1} x {1..d}, plus the design metadata needed to apply it
/// (paper Algorithm 1 output, consumed by Algorithm 2).
class RepairPlanSet {
 public:
  RepairPlanSet() = default;
  RepairPlanSet(size_t dim, std::vector<std::string> feature_names);

  size_t dim() const { return dim_; }
  const std::vector<std::string>& feature_names() const { return feature_names_; }

  ChannelPlan& At(int u, size_t k);
  const ChannelPlan& At(int u, size_t k) const;

  /// Barycentre position t used at design time (0.5 = the fair barycentre).
  double target_t() const { return target_t_; }
  void set_target_t(double t) { target_t_ = t; }

  /// Validates every channel (see ChannelPlan::Validate).
  common::Status Validate(double tolerance = 1e-6) const;

  /// Binary persistence: a designed plan is a deployable artifact — design
  /// once on the research data, then ship the file to the systems that
  /// repair archival torrents. Format v2: magic/version header, dims, then
  /// per-channel grids, marginals, barycenters and CSR plans (row offsets,
  /// column indices, values; little-endian). Version-1 files (dense plan
  /// matrices) still load, converting to CSR on the way in.
  common::Status SaveToFile(const std::string& path) const;
  static common::Result<RepairPlanSet> LoadFromFile(const std::string& path);

 private:
  size_t dim_ = 0;
  double target_t_ = 0.5;
  std::vector<std::string> feature_names_;
  std::vector<ChannelPlan> channels_;  // index: u * dim_ + k
};

}  // namespace otfair::core

#endif  // OTFAIR_CORE_REPAIR_PLAN_H_
