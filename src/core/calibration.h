#ifndef OTFAIR_CORE_CALIBRATION_H_
#define OTFAIR_CORE_CALIBRATION_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "data/dataset.h"

namespace otfair::core {

/// Operating-condition calibration — practical answers to the two open
/// questions of paper §VI: a *stopping rule* for research-data collection
/// and a data-driven choice of the support resolution n_Q ("in practice, we
/// will increase n_Q and monitor convergence", §V-A2b (iv)).

/// Verdict of the research-sufficiency check.
struct ResearchSufficiency {
  /// True when every (u, s, k) channel's marginal estimate is stable.
  bool sufficient = false;
  /// Worst split-half instability across channels (normalized W1 between
  /// marginals estimated from disjoint halves of the research data; 0 =
  /// perfectly stable).
  double worst_instability = 0.0;
  /// Channel that drives worst_instability, "u=?,s=?,k=?".
  std::string worst_channel;
  /// Per-channel instabilities, ordered (u, s, k) row-major.
  std::vector<double> instability;
};

/// Options for the sufficiency check.
struct SufficiencyOptions {
  size_t n_q = 50;
  /// Number of random half-splits averaged per channel.
  size_t splits = 8;
  /// A channel is stable when its average normalized split-half W1 falls
  /// below this. 0.05 ~= the Fig. 3 plateau on the paper's simulation.
  double threshold = 0.05;
  size_t min_group_size = 4;
  uint64_t seed = 0xca11b;
};

/// Split-half stopping rule: the research set is declared sufficient when
/// KDE marginals estimated from two random halves agree (normalized W1)
/// on every channel. Under the LLN this is exactly the convergence the
/// paper's Fig. 3 tracks — E flattens when the per-channel marginals stop
/// moving with more data — but it needs no archive and no repair run.
common::Result<ResearchSufficiency> CheckResearchSufficiency(
    const data::Dataset& research, const SufficiencyOptions& options = {});

/// Options for resolution selection.
struct ResolutionOptions {
  size_t min_n_q = 5;
  size_t max_n_q = 400;
  /// Stop when doubling n_Q moves every channel's interpolated marginal by
  /// less than this (normalized W1).
  double tolerance = 0.01;
  size_t min_group_size = 4;
};

/// Data-driven n_Q selection (§V-A2b (iv)): doubles n_Q from min_n_q until
/// the interpolated marginals stop changing, and returns the first
/// sufficient resolution. Returns max_n_q if the tolerance is never met.
common::Result<size_t> SelectSupportResolution(const data::Dataset& research,
                                               const ResolutionOptions& options = {});

}  // namespace otfair::core

#endif  // OTFAIR_CORE_CALIBRATION_H_
