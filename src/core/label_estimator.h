#ifndef OTFAIR_CORE_LABEL_ESTIMATOR_H_
#define OTFAIR_CORE_LABEL_ESTIMATOR_H_

#include <vector>

#include "common/result.h"
#include "data/dataset.h"
#include "stats/gmm.h"

namespace otfair::core {

/// Estimates the protected labels s_hat|u of unlabelled archival rows
/// (paper §IV, Eq. 10 and §VI).
///
/// The archival stream typically lacks S; the paper identifies the
/// u-conditional mixture F(x|u) = sum_s F(x|s,u) Pr[s|u] by "standard
/// methods" [Bishop 2006] and assigns MAP labels. This estimator fits, per
/// u-stratum, an |S|-component diagonal-Gaussian model *supervised* on the
/// s-labelled research data (so component identities stay aligned with the
/// s levels), then classifies archival rows with the stratum model of
/// their observed u.
class LabelEstimator {
 public:
  /// Fits every u-stratum model from the labelled research data; every
  /// (u, s) group must contain at least one row.
  static common::Result<LabelEstimator> Fit(const data::Dataset& research);

  /// MAP estimate s_hat for one row with known u.
  int EstimateOne(int u, const std::vector<double>& x) const;

  /// Posterior Pr[s = 1 | x, u] for one row — the probabilistic protected
  /// attribute of §VI / ref. [39], consumed by the soft repair modes.
  /// Binary |S| = 2 fits only; use PosteriorsFor for the general
  /// per-level posteriors.
  double PosteriorS1(int u, const std::vector<double>& x) const;

  /// Posterior distribution over all |S| levels for one row.
  std::vector<double> PosteriorsFor(int u, const std::vector<double>& x) const;

  /// MAP estimates for every row of `dataset` (uses each row's u label;
  /// ignores its s label if present).
  common::Result<std::vector<int>> EstimateS(const data::Dataset& dataset) const;

  /// Posteriors Pr[s = 1 | row] for every row of `dataset`.
  common::Result<std::vector<double>> PosteriorsS1(const data::Dataset& dataset) const;

  /// Fraction of rows whose estimate matches the dataset's true s labels;
  /// for measuring label-noise sensitivity on data where truth is known.
  common::Result<double> AccuracyOn(const data::Dataset& labelled) const;

 private:
  LabelEstimator() = default;

  size_t s_levels_ = 2;
  std::vector<stats::GaussianMixture> models_;  // one per u stratum
};

}  // namespace otfair::core

#endif  // OTFAIR_CORE_LABEL_ESTIMATOR_H_
