#include "core/repairer.h"

#include <atomic>
#include <cmath>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"
#include "common/status.h"
#include "obs/trace.h"

namespace otfair::core {

using common::Result;
using common::Status;

namespace {
// Row mass below this is treated as empty (KDE tails can underflow).
constexpr double kRowMassFloor = 1e-300;

/// Schedule-independent batch stats accumulator: per-row tallies fold in
/// through commutative atomic integer adds, so the totals match the
/// serial path at any thread count without a per-row stats buffer.
struct StatCounters {
  std::atomic<size_t> repaired{0};
  std::atomic<size_t> clamped{0};
  std::atomic<size_t> fallbacks{0};

  void Add(const RepairStats& local) {
    repaired.fetch_add(local.values_repaired, std::memory_order_relaxed);
    clamped.fetch_add(local.values_clamped, std::memory_order_relaxed);
    fallbacks.fetch_add(local.empty_row_fallbacks, std::memory_order_relaxed);
  }

  void FlushInto(RepairStats& stats) const {
    stats.values_repaired += repaired.load();
    stats.values_clamped += clamped.load();
    stats.empty_row_fallbacks += fallbacks.load();
  }
};
}  // namespace

Result<OffSampleRepairer> OffSampleRepairer::Create(RepairPlanSet plans,
                                                    const RepairOptions& options) {
  if (!(options.strength >= 0.0 && options.strength <= 1.0))
    return Status::InvalidArgument("strength must lie in [0, 1]");
  if (options.threads < 0)
    return Status::InvalidArgument("threads must be >= 1 (or 0 for the process default)");
  Status valid = plans.Validate(1e-5);
  if (!valid.ok()) return valid;
  OffSampleRepairer repairer(std::move(plans), options);
  OTFAIR_RETURN_IF_ERROR(repairer.BuildTables());
  return repairer;
}

OffSampleRepairer::OffSampleRepairer(RepairPlanSet plans, const RepairOptions& options)
    : plans_(std::move(plans)), options_(options), rng_(options.seed) {}

Status OffSampleRepairer::BuildTables() {
  const size_t dim = plans_.dim();
  const size_t s_levels = plans_.s_levels();
  const size_t u_levels = plans_.u_levels();
  tables_.resize(u_levels * s_levels * dim);
  for (size_t u = 0; u < u_levels; ++u) {
    for (size_t s = 0; s < s_levels; ++s) {
      for (size_t k = 0; k < dim; ++k) {
        const ChannelPlan& channel = plans_.At(static_cast<int>(u), k);
        const ot::SparsePlan& pi = channel.plan[s];
        const size_t nq = channel.grid.size();
        ChannelTables tables;
        tables.alias.Reserve(nq, pi.nnz());
        tables.conditional_mean.assign(nq, 0.0);
        tables.fallback_row.assign(nq, 0);

        // One pass over the CSR support per row — O(nnz) for the whole
        // channel instead of the dense O(n_Q^2) scan. Each massive row
        // becomes one slot-major arena row over its support only (the
        // builder reads the CSR value span in place), with the grid
        // columns stored as slot payloads so a draw never touches the
        // plan again.
        std::vector<char> has_mass(nq, 0);
        for (size_t q = 0; q < nq; ++q) {
          const ot::SparsePlan::RowView row = pi.Row(q);
          double mass = 0.0;
          double mean = 0.0;
          for (size_t t = 0; t < row.nnz; ++t) {
            mass += row.values[t];
            mean += row.values[t] * channel.grid.point(row.cols[t]);
          }
          if (mass > kRowMassFloor) {
            has_mass[q] = 1;
            tables.conditional_mean[q] = mean / mass;
            Status alias = tables.alias.AppendRow(row.values, row.cols, row.nnz);
            if (!alias.ok())
              return Status::Internal("alias build failed on massive row: " +
                                      alias.message());
          } else {
            tables.alias.AppendEmptyRow();
          }
        }

        // Nearest massive row for each empty row (outward scan).
        bool any_mass = false;
        for (size_t q = 0; q < nq; ++q) any_mass = any_mass || has_mass[q];
        if (!any_mass)
          return Status::FailedPrecondition("plan channel has no transportable mass");
        for (size_t q = 0; q < nq; ++q) {
          if (has_mass[q]) {
            tables.fallback_row[q] = static_cast<uint32_t>(q);
            continue;
          }
          for (size_t delta = 1; delta < nq; ++delta) {
            if (q >= delta && has_mass[q - delta]) {
              tables.fallback_row[q] = static_cast<uint32_t>(q - delta);
              break;
            }
            if (q + delta < nq && has_mass[q + delta]) {
              tables.fallback_row[q] = static_cast<uint32_t>(q + delta);
              break;
            }
          }
        }
        tables_[(u * s_levels + s) * dim + k] = std::move(tables);
      }
    }
  }
  return Status::Ok();
}

const OffSampleRepairer::ChannelTables& OffSampleRepairer::TablesFor(int u, int s,
                                                                     size_t k) const {
  OTFAIR_CHECK(u >= 0 && static_cast<size_t>(u) < plans_.u_levels());
  OTFAIR_CHECK(s >= 0 && static_cast<size_t>(s) < plans_.s_levels());
  OTFAIR_CHECK_LT(k, plans_.dim());
  return tables_[(static_cast<size_t>(u) * plans_.s_levels() + static_cast<size_t>(s)) *
                     plans_.dim() +
                 k];
}

double OffSampleRepairer::RepairValue(int u, int s, size_t k, double x) {
  return RepairValueImpl(u, s, k, x, rng_, stats_);
}

double OffSampleRepairer::RepairValue(int u, int s, size_t k, double x, common::Rng& rng) {
  return RepairValueImpl(u, s, k, x, rng, stats_);
}

double OffSampleRepairer::RepairValueImpl(int u, int s, size_t k, double x, common::Rng& rng,
                                          RepairStats& stats) const {
  const ChannelPlan& channel = plans_.At(u, k);
  const ChannelTables& tables = TablesFor(u, s, k);
  const SupportGrid::Location loc = channel.grid.Locate(x);
  ++stats.values_repaired;
  if (loc.clamped) ++stats.values_clamped;

  double transported;
  if (options_.mode == TransportMode::kStochastic) {
    // Algorithm 2 lines 6-9: Bernoulli neighbour choice, then one draw from
    // the normalized plan row (Eq. 15). The arena slot carries the grid
    // column payload, so the draw is one slot load.
    size_t q = loc.lower;
    if (rng.Bernoulli(loc.tau) && q + 1 < channel.grid.size()) ++q;
    if (!tables.alias.RowHasMass(q)) {
      ++stats.empty_row_fallbacks;
      q = tables.fallback_row[q];
    }
    transported = channel.grid.point(tables.alias.SampleCol(q, rng));
  } else {
    // Deterministic ablation: tau-weighted mix of neighbouring rows'
    // conditional means.
    size_t q0 = loc.lower;
    size_t q1 = std::min(q0 + 1, channel.grid.size() - 1);
    if (!tables.alias.RowHasMass(q0)) {
      ++stats.empty_row_fallbacks;
      q0 = tables.fallback_row[q0];
    }
    if (!tables.alias.RowHasMass(q1)) {
      ++stats.empty_row_fallbacks;
      q1 = tables.fallback_row[q1];
    }
    transported = (1.0 - loc.tau) * tables.conditional_mean[q0] +
                  loc.tau * tables.conditional_mean[q1];
  }

  // Partial repair (strength < 1) interpolates toward the transported
  // value.
  return (1.0 - options_.strength) * x + options_.strength * transported;
}

void OffSampleRepairer::RepairSpan(int u, int s, size_t k, const double* xs, size_t count,
                                   common::Rng* rngs, double* out, RepairStats& stats,
                                   SpanScratch& scratch) const {
  OTFAIR_TRACE_SPAN("repair_span");
  const ChannelPlan& channel = plans_.At(u, k);
  const ChannelTables& tables = TablesFor(u, s, k);
  const size_t nq = channel.grid.size();
  const double strength = options_.strength;

  // Pass 1: locate every record on the grid. Pure arithmetic, no table
  // traffic, so it pipelines independently of the lookup pass.
  scratch.q.resize(count);
  scratch.tau.resize(count);
  stats.values_repaired += count;
  for (size_t t = 0; t < count; ++t) {
    const SupportGrid::Location loc = channel.grid.Locate(xs[t]);
    scratch.q[t] = static_cast<uint32_t>(loc.lower);
    scratch.tau[t] = loc.tau;
    if (loc.clamped) ++stats.values_clamped;
  }

  if (options_.mode == TransportMode::kStochastic) {
    // Pass 2: alias draws with the slot row of record t+8 prefetched —
    // far enough ahead to cover an L2 miss, close enough that the line
    // is still resident when its draw executes. The prefetch targets the
    // located lower row; the Bernoulli neighbour bump moves at most one
    // row over, which in the slot-major arena is the adjacent span.
    constexpr size_t kPrefetchAhead = 8;
    for (size_t t = 0; t < count; ++t) {
      if (t + kPrefetchAhead < count)
        tables.alias.PrefetchRow(scratch.q[t + kPrefetchAhead]);
      common::Rng& rng = rngs[t];
      size_t q = scratch.q[t];
      if (rng.Bernoulli(scratch.tau[t]) && q + 1 < nq) ++q;
      if (!tables.alias.RowHasMass(q)) {
        ++stats.empty_row_fallbacks;
        q = tables.fallback_row[q];
      }
      const double transported = channel.grid.point(tables.alias.SampleCol(q, rng));
      out[t] = (1.0 - strength) * xs[t] + strength * transported;
    }
  } else {
    for (size_t t = 0; t < count; ++t) {
      const double tau = scratch.tau[t];
      size_t q0 = scratch.q[t];
      size_t q1 = std::min(q0 + 1, nq - 1);
      if (!tables.alias.RowHasMass(q0)) {
        ++stats.empty_row_fallbacks;
        q0 = tables.fallback_row[q0];
      }
      if (!tables.alias.RowHasMass(q1)) {
        ++stats.empty_row_fallbacks;
        q1 = tables.fallback_row[q1];
      }
      const double transported =
          (1.0 - tau) * tables.conditional_mean[q0] + tau * tables.conditional_mean[q1];
      out[t] = (1.0 - strength) * xs[t] + strength * transported;
    }
  }
}

double OffSampleRepairer::RepairValueSoft(int u, double pr_s1, size_t k, double x) {
  OTFAIR_CHECK(pr_s1 >= 0.0 && pr_s1 <= 1.0);
  // Soft labels are the binary probabilistic-attribute mode (§VI); the
  // multi-group pipeline uses hard categorical labels.
  OTFAIR_CHECK_EQ(plans_.s_levels(), 2u);
  const int s = rng_.Bernoulli(pr_s1) ? 1 : 0;
  return RepairValue(u, s, k, x);
}

Result<data::Dataset> OffSampleRepairer::RepairDataset(const data::Dataset& dataset) {
  return RepairDatasetWithLabels(dataset, dataset.s_labels());
}

Result<data::Dataset> OffSampleRepairer::RepairDatasetWithLabels(
    const data::Dataset& dataset, const std::vector<int>& s_labels) {
  if (dataset.dim() != plans_.dim())
    return Status::InvalidArgument("dataset dimensionality does not match the plan set");
  if (s_labels.size() != dataset.size())
    return Status::InvalidArgument("s_labels length must match dataset size");
  for (int s : s_labels) {
    if (s < 0 || static_cast<size_t>(s) >= plans_.s_levels())
      return Status::InvalidArgument("s_labels must lie in [0, " +
                                     std::to_string(plans_.s_levels()) + ")");
  }
  for (int u : dataset.u_labels()) {
    if (u < 0 || static_cast<size_t>(u) >= plans_.u_levels())
      return Status::InvalidArgument("dataset u labels exceed the plan's u levels");
  }
  data::Dataset repaired = dataset.Clone();
  const size_t n = dataset.size();
  const size_t dim = dataset.dim();
  // Per-row RNG sub-stream and a per-row local stats tally: rows are
  // order-independent, so the parallel schedule cannot change the output
  // (see RepairDataset). The tallies fold into shared counters with
  // commutative integer adds — totals are schedule-independent too.
  StatCounters counters;
  if (options_.soa_batch) {
    // SoA batch path: bucket rows by their (u, s) label pair, then repair
    // fixed-size chunks channel by channel through RepairSpan, so every
    // lookup run stays inside one channel's slot-major arena. Chunks are
    // the parallel work unit; per-row ForStream generators make the
    // output independent of the chunk schedule — and bit-identical to
    // the row-by-row path below, which replays the same per-row draws.
    const size_t s_levels = plans_.s_levels();
    std::vector<std::vector<uint32_t>> buckets(plans_.u_levels() * s_levels);
    for (size_t i = 0; i < n; ++i) {
      buckets[static_cast<size_t>(dataset.u(i)) * s_levels + static_cast<size_t>(s_labels[i])]
          .push_back(static_cast<uint32_t>(i));
    }
    constexpr size_t kChunk = 256;
    struct Chunk {
      uint32_t bucket;
      uint32_t begin;
      uint32_t end;
    };
    std::vector<Chunk> chunks;
    for (size_t b = 0; b < buckets.size(); ++b) {
      for (size_t begin = 0; begin < buckets[b].size(); begin += kChunk) {
        const size_t end = std::min(begin + kChunk, buckets[b].size());
        chunks.push_back(Chunk{static_cast<uint32_t>(b), static_cast<uint32_t>(begin),
                               static_cast<uint32_t>(end)});
      }
    }
    common::parallel::ParallelFor(
        0, chunks.size(),
        [&](size_t ci) {
          const Chunk& c = chunks[ci];
          const uint32_t* ids = buckets[c.bucket].data() + c.begin;
          const int u = static_cast<int>(c.bucket / s_levels);
          const int s = static_cast<int>(c.bucket % s_levels);
          const size_t m = c.end - c.begin;
          // k-major gather: channel k's values for the whole chunk form
          // one contiguous span, repaired in place by RepairSpan.
          std::vector<double> buf(m * dim);
          std::vector<common::Rng> rngs;
          rngs.reserve(m);
          for (size_t t = 0; t < m; ++t)
            rngs.push_back(common::Rng::ForStream(options_.seed, ids[t]));
          for (size_t k = 0; k < dim; ++k)
            for (size_t t = 0; t < m; ++t) buf[k * m + t] = dataset.feature(ids[t], k);
          RepairStats local;
          SpanScratch scratch;
          for (size_t k = 0; k < dim; ++k)
            RepairSpan(u, s, k, buf.data() + k * m, m, rngs.data(), buf.data() + k * m, local,
                       scratch);
          for (size_t k = 0; k < dim; ++k)
            for (size_t t = 0; t < m; ++t) repaired.set_feature(ids[t], k, buf[k * m + t]);
          counters.Add(local);
        },
        static_cast<size_t>(options_.threads));
  } else {
    common::parallel::ParallelFor(
        0, n,
        [&](size_t i) {
          common::Rng rng = common::Rng::ForStream(options_.seed, i);
          const int u = dataset.u(i);
          const int s = s_labels[i];
          RepairStats local;
          for (size_t k = 0; k < dim; ++k) {
            repaired.set_feature(i, k,
                                 RepairValueImpl(u, s, k, dataset.feature(i, k), rng, local));
          }
          counters.Add(local);
        },
        static_cast<size_t>(options_.threads));
  }
  counters.FlushInto(stats_);
  return repaired;
}

Result<data::Dataset> OffSampleRepairer::RepairDatasetSoft(const data::Dataset& dataset,
                                                           const std::vector<double>& pr_s1) {
  if (dataset.dim() != plans_.dim())
    return Status::InvalidArgument("dataset dimensionality does not match the plan set");
  if (pr_s1.size() != dataset.size())
    return Status::InvalidArgument("pr_s1 length must match dataset size");
  if (plans_.s_levels() != 2)
    return Status::InvalidArgument(
        "soft (probabilistic) repair is defined for binary s only");
  for (double p : pr_s1) {
    if (!(p >= 0.0 && p <= 1.0))
      return Status::InvalidArgument("posteriors must lie in [0, 1]");
  }
  data::Dataset repaired = dataset.Clone();
  const size_t n = dataset.size();
  const size_t dim = dataset.dim();
  StatCounters counters;
  common::parallel::ParallelFor(
      0, n,
      [&](size_t i) {
        common::Rng rng = common::Rng::ForStream(options_.seed, i);
        // One class draw per row, shared by all channels: a record is
        // repaired coherently under a single imputed protected label.
        const int s = rng.Bernoulli(pr_s1[i]) ? 1 : 0;
        RepairStats local;
        for (size_t k = 0; k < dim; ++k) {
          repaired.set_feature(
              i, k, RepairValueImpl(dataset.u(i), s, k, dataset.feature(i, k), rng, local));
        }
        counters.Add(local);
      },
      static_cast<size_t>(options_.threads));
  counters.FlushInto(stats_);
  return repaired;
}

}  // namespace otfair::core
