#include "core/marginals.h"

#include "common/status.h"
#include "stats/kde.h"

namespace otfair::core {

using common::Result;
using common::Status;

Result<ot::DiscreteMeasure> InterpolateMarginal(const std::vector<double>& samples,
                                                const SupportGrid& grid,
                                                const MarginalOptions& options) {
  if (samples.empty()) return Status::InvalidArgument("empty channel sample");
  auto kde = options.bandwidth > 0.0
                 ? stats::GaussianKde::Fit(samples, options.bandwidth)
                 : stats::GaussianKde::FitSilverman(samples);
  if (!kde.ok()) return kde.status();
  auto pmf = kde->PmfOnGrid(grid.points());
  if (!pmf.ok()) return pmf.status();
  return ot::DiscreteMeasure::Create(grid.points(), std::move(*pmf));
}

}  // namespace otfair::core
