#ifndef OTFAIR_CORE_MARGINALS_H_
#define OTFAIR_CORE_MARGINALS_H_

#include <vector>

#include "common/result.h"
#include "core/support_grid.h"
#include "ot/measure.h"

namespace otfair::core {

/// Marginal-estimation options for Algorithm 1 line 8.
struct MarginalOptions {
  /// KDE bandwidth; 0 selects Silverman's rule (the paper's choice, Eq. 12).
  double bandwidth = 0.0;
};

/// Interpolates an empirical channel marginal onto the shared support Q via
/// Gaussian KDE (paper Eq. 11): `p_q ∝ sum_i K(zeta_q - x_i, h)`, returned
/// as a normalized discrete measure on the grid points.
common::Result<ot::DiscreteMeasure> InterpolateMarginal(const std::vector<double>& samples,
                                                        const SupportGrid& grid,
                                                        const MarginalOptions& options = {});

}  // namespace otfair::core

#endif  // OTFAIR_CORE_MARGINALS_H_
