#include "core/geometric.h"

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/status.h"
#include "core/repair_plan.h"
#include "ot/measure.h"
#include "ot/plan.h"

namespace otfair::core {

using common::Result;
using common::Status;

namespace {

/// One s-class of one u-stratum's channel: samples in sorted order plus
/// the permutation back to dataset rows.
struct SortedClass {
  std::vector<size_t> rows;    // dataset row indices (unsorted order)
  std::vector<size_t> order;   // sorted position -> local index into rows
  std::vector<double> sorted;  // sorted sample values
};

SortedClass SortClass(const data::Dataset& research, const std::vector<size_t>& idx,
                      size_t k) {
  SortedClass out;
  out.rows = idx;
  const std::vector<double> x = research.FeatureColumn(k, idx);
  out.order.resize(x.size());
  std::iota(out.order.begin(), out.order.end(), 0);
  std::stable_sort(out.order.begin(), out.order.end(),
                   [&](size_t a, size_t b) { return x[a] < x[b]; });
  out.sorted.resize(x.size());
  for (size_t i = 0; i < x.size(); ++i) out.sorted[i] = x[out.order[i]];
  return out;
}

}  // namespace

Result<data::Dataset> GeometricRepairDataset(const data::Dataset& research,
                                             const GeometricOptions& options) {
  if (research.empty()) return Status::InvalidArgument("empty research dataset");
  if (!(options.t >= 0.0 && options.t <= 1.0))
    return Status::InvalidArgument("t must lie in [0, 1]");
  const ot::Solver& solver = options.solver ? *options.solver : *ot::DefaultSolver();
  const size_t s_levels = research.s_levels();
  const size_t u_levels = research.u_levels();

  // Class weights (shared contract: ResolveLambdas).
  auto resolved = ResolveLambdas(options.lambdas, options.t, s_levels);
  if (!resolved.ok()) return resolved.status();
  const std::vector<double> lam = std::move(*resolved);
  // The binary path below consumes t directly (Eqs. 8-9, kept verbatim);
  // honour explicit lambdas by re-deriving it.
  const double t = options.lambdas.empty() ? options.t : lam[1];

  data::Dataset repaired = research.Clone();

  // Per-u row strata, validated up front so the per-channel repairs below
  // are independent tasks.
  struct Stratum {
    std::vector<std::vector<size_t>> idx_by_s;
  };
  std::vector<Stratum> strata(u_levels);
  for (size_t u = 0; u < u_levels; ++u) {
    strata[u].idx_by_s.resize(s_levels);
    for (size_t s = 0; s < s_levels; ++s) {
      strata[u].idx_by_s[s] =
          research.GroupIndices({static_cast<int>(u), static_cast<int>(s)});
      if (strata[u].idx_by_s[s].size() < options.min_group_size)
        return Status::FailedPrecondition("research group (u=" + std::to_string(u) +
                                          ", s=" + std::to_string(s) + ") lacks rows");
    }
  }

  // The paper's binary channel repair (Eqs. 8-9), preserved bit-for-bit.
  auto repair_channel_binary = [&](size_t u, size_t k) -> Status {
    const std::vector<size_t>& idx0 = strata[u].idx_by_s[0];
    const std::vector<size_t>& idx1 = strata[u].idx_by_s[1];
    const double n0 = static_cast<double>(idx0.size());
    const double n1 = static_cast<double>(idx1.size());

    const std::vector<double> x0 = research.FeatureColumn(k, idx0);
    const std::vector<double> x1 = research.FeatureColumn(k, idx1);

    // Sort each class; the monotone coupling is expressed in sorted
    // order, so keep the permutation to write results back to rows.
    std::vector<size_t> order0(x0.size());
    std::vector<size_t> order1(x1.size());
    std::iota(order0.begin(), order0.end(), 0);
    std::iota(order1.begin(), order1.end(), 0);
    std::stable_sort(order0.begin(), order0.end(),
                     [&](size_t a, size_t b) { return x0[a] < x0[b]; });
    std::stable_sort(order1.begin(), order1.end(),
                     [&](size_t a, size_t b) { return x1[a] < x1[b]; });
    std::vector<double> sorted0(x0.size());
    std::vector<double> sorted1(x1.size());
    for (size_t i = 0; i < x0.size(); ++i) sorted0[i] = x0[order0[i]];
    for (size_t j = 0; j < x1.size(); ++j) sorted1[j] = x1[order1[j]];

    auto mu0 = ot::DiscreteMeasure::FromSamples(sorted0);
    if (!mu0.ok()) return mu0.status();
    auto mu1 = ot::DiscreteMeasure::FromSamples(sorted1);
    if (!mu1.ok()) return mu1.status();
    // Both measures are sorted, so the backend's CSR rows index the
    // sorted sample orders directly.
    auto coupling = solver.Solve1DSparse(*mu0, *mu1);
    if (!coupling.ok()) return coupling.status();

    // Conditional transports: sum_j pi_ij x1_j (and transpose), one
    // O(nnz) sweep over the CSR rows. Row mass of pi is 1/n0 and column
    // mass 1/n1, so the n0/n1 factors in Eqs. 8-9 turn these sums into
    // conditional means.
    std::vector<double> transport0(sorted0.size(), 0.0);
    std::vector<double> transport1(sorted1.size(), 0.0);
    for (size_t i = 0; i < coupling->rows(); ++i) {
      const ot::SparsePlan::RowView row = coupling->Row(i);
      for (size_t e = 0; e < row.nnz; ++e) {
        transport0[i] += row.values[e] * sorted1[row.cols[e]];
        transport1[row.cols[e]] += row.values[e] * sorted0[i];
      }
    }

    for (size_t i = 0; i < sorted0.size(); ++i) {
      const double value = (1.0 - t) * sorted0[i] + n0 * t * transport0[i];
      repaired.set_feature(idx0[order0[i]], k, value);
    }
    for (size_t j = 0; j < sorted1.size(); ++j) {
      const double value = n1 * (1.0 - t) * transport1[j] + t * sorted1[j];
      repaired.set_feature(idx1[order1[j]], k, value);
    }
    return Status::Ok();
  };

  // Multi-group channel repair: every class moves to the lambda-weighted
  // barycenter of all classes, accumulating one coupled conditional mean
  // per foreign class. Couplings are solved once per unordered pair and
  // swept in both directions.
  auto repair_channel_multi = [&](size_t u, size_t k) -> Status {
    std::vector<SortedClass> classes(s_levels);
    std::vector<ot::DiscreteMeasure> mu(s_levels);
    for (size_t s = 0; s < s_levels; ++s) {
      classes[s] = SortClass(research, strata[u].idx_by_s[s], k);
      auto m = ot::DiscreteMeasure::FromSamples(classes[s].sorted);
      if (!m.ok()) return m.status();
      mu[s] = std::move(*m);
    }

    // accum[s][i]: sum over foreign classes s' of
    // lambda_{s'} * n_s * sum_j pi^{s->s'}_{ij} x_{s',j}.
    std::vector<std::vector<double>> accum(s_levels);
    for (size_t s = 0; s < s_levels; ++s) accum[s].assign(classes[s].sorted.size(), 0.0);
    for (size_t a = 0; a < s_levels; ++a) {
      const double na = static_cast<double>(classes[a].sorted.size());
      for (size_t b = a + 1; b < s_levels; ++b) {
        const double nb = static_cast<double>(classes[b].sorted.size());
        auto coupling = solver.Solve1DSparse(mu[a], mu[b]);
        if (!coupling.ok()) return coupling.status();
        for (size_t i = 0; i < coupling->rows(); ++i) {
          const ot::SparsePlan::RowView row = coupling->Row(i);
          for (size_t e = 0; e < row.nnz; ++e) {
            const size_t j = row.cols[e];
            // pi rows sum to 1/n_a, columns to 1/n_b: scaling turns the
            // sweeps into the two conditional means.
            accum[a][i] += lam[b] * na * row.values[e] * classes[b].sorted[j];
            accum[b][j] += lam[a] * nb * row.values[e] * classes[a].sorted[i];
          }
        }
      }
    }

    for (size_t s = 0; s < s_levels; ++s) {
      const SortedClass& cls = classes[s];
      for (size_t i = 0; i < cls.sorted.size(); ++i) {
        const double value = lam[s] * cls.sorted[i] + accum[s][i];
        repaired.set_feature(cls.rows[cls.order[i]], k, value);
      }
    }
    return Status::Ok();
  };

  // Each (u, k) task touches only its own stratum's rows in column k, so
  // the writes are disjoint and any schedule yields bit-identical output
  // (and a deterministic first error).
  const size_t dim = research.dim();
  Status status = common::parallel::ParallelForStatus(0, u_levels * dim, [&](size_t task) {
    const size_t u = task / dim;
    const size_t k = task % dim;
    return s_levels == 2 ? repair_channel_binary(u, k) : repair_channel_multi(u, k);
  });
  if (!status.ok()) return status;
  return repaired;
}

}  // namespace otfair::core
