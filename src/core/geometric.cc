#include "core/geometric.h"

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/status.h"
#include "ot/measure.h"
#include "ot/plan.h"

namespace otfair::core {

using common::Result;
using common::Status;

Result<data::Dataset> GeometricRepairDataset(const data::Dataset& research,
                                             const GeometricOptions& options) {
  if (research.empty()) return Status::InvalidArgument("empty research dataset");
  if (!(options.t >= 0.0 && options.t <= 1.0))
    return Status::InvalidArgument("t must lie in [0, 1]");
  const ot::Solver& solver = options.solver ? *options.solver : *ot::DefaultSolver();

  data::Dataset repaired = research.Clone();

  // Per-u row strata, validated up front so the per-channel repairs below
  // are independent tasks.
  struct Stratum {
    std::vector<size_t> idx0;
    std::vector<size_t> idx1;
  };
  Stratum strata[2];
  for (int u = 0; u <= 1; ++u) {
    strata[u].idx0 = research.GroupIndices({u, 0});
    strata[u].idx1 = research.GroupIndices({u, 1});
    if (strata[u].idx0.size() < options.min_group_size ||
        strata[u].idx1.size() < options.min_group_size)
      return Status::FailedPrecondition("research group (u=" + std::to_string(u) +
                                        ") lacks rows for one or both s classes");
  }

  auto repair_channel = [&](int u, size_t k) -> Status {
    const std::vector<size_t>& idx0 = strata[u].idx0;
    const std::vector<size_t>& idx1 = strata[u].idx1;
    const double n0 = static_cast<double>(idx0.size());
    const double n1 = static_cast<double>(idx1.size());

    const std::vector<double> x0 = research.FeatureColumn(k, idx0);
    const std::vector<double> x1 = research.FeatureColumn(k, idx1);

    // Sort each class; the monotone coupling is expressed in sorted
    // order, so keep the permutation to write results back to rows.
    std::vector<size_t> order0(x0.size());
    std::vector<size_t> order1(x1.size());
    std::iota(order0.begin(), order0.end(), 0);
    std::iota(order1.begin(), order1.end(), 0);
    std::stable_sort(order0.begin(), order0.end(),
                     [&](size_t a, size_t b) { return x0[a] < x0[b]; });
    std::stable_sort(order1.begin(), order1.end(),
                     [&](size_t a, size_t b) { return x1[a] < x1[b]; });
    std::vector<double> sorted0(x0.size());
    std::vector<double> sorted1(x1.size());
    for (size_t i = 0; i < x0.size(); ++i) sorted0[i] = x0[order0[i]];
    for (size_t j = 0; j < x1.size(); ++j) sorted1[j] = x1[order1[j]];

    auto mu0 = ot::DiscreteMeasure::FromSamples(sorted0);
    if (!mu0.ok()) return mu0.status();
    auto mu1 = ot::DiscreteMeasure::FromSamples(sorted1);
    if (!mu1.ok()) return mu1.status();
    // Both measures are sorted, so the backend's CSR rows index the
    // sorted sample orders directly.
    auto coupling = solver.Solve1DSparse(*mu0, *mu1);
    if (!coupling.ok()) return coupling.status();

    // Conditional transports: sum_j pi_ij x1_j (and transpose), one
    // O(nnz) sweep over the CSR rows. Row mass of pi is 1/n0 and column
    // mass 1/n1, so the n0/n1 factors in Eqs. 8-9 turn these sums into
    // conditional means.
    std::vector<double> transport0(sorted0.size(), 0.0);
    std::vector<double> transport1(sorted1.size(), 0.0);
    for (size_t i = 0; i < coupling->rows(); ++i) {
      const ot::SparsePlan::RowView row = coupling->Row(i);
      for (size_t t = 0; t < row.nnz; ++t) {
        transport0[i] += row.values[t] * sorted1[row.cols[t]];
        transport1[row.cols[t]] += row.values[t] * sorted0[i];
      }
    }

    for (size_t i = 0; i < sorted0.size(); ++i) {
      const double value = (1.0 - options.t) * sorted0[i] + n0 * options.t * transport0[i];
      repaired.set_feature(idx0[order0[i]], k, value);
    }
    for (size_t j = 0; j < sorted1.size(); ++j) {
      const double value = n1 * (1.0 - options.t) * transport1[j] + options.t * sorted1[j];
      repaired.set_feature(idx1[order1[j]], k, value);
    }
    return Status::Ok();
  };

  // Each (u, k) task touches only its own stratum's rows in column k, so
  // the writes are disjoint and any schedule yields bit-identical output
  // (and a deterministic first error).
  const size_t dim = research.dim();
  Status status = common::parallel::ParallelForStatus(0, 2 * dim, [&](size_t task) {
    return repair_channel(task < dim ? 0 : 1, task % dim);
  });
  if (!status.ok()) return status;
  return repaired;
}

}  // namespace otfair::core
