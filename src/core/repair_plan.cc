#include "core/repair_plan.h"

#include <cmath>
#include <cstdint>
#include <fstream>

#include "common/check.h"
#include "data/dataset.h"

namespace otfair::core {

using common::Matrix;
using common::Result;
using common::Status;

namespace {

constexpr uint32_t kMagic = 0x4F544652;  // "OTFR"
// v1 stored dense n_Q x n_Q plan matrices; v2 stores CSR plans; v3 adds
// the |U|/|S| level counts and barycentric lambdas of the multi-group
// pipeline. Loading accepts all three (v1/v2 map to the binary levels),
// saving always writes v3.
constexpr uint32_t kVersionDense = 1;
constexpr uint32_t kVersionCsr = 2;
constexpr uint32_t kVersionMultiGroup = 3;

void WriteU32(std::ofstream& out, uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void WriteU64(std::ofstream& out, uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void WriteF64(std::ofstream& out, double v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void WriteString(std::ofstream& out, const std::string& s) {
  WriteU64(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}
void WriteDoubles(std::ofstream& out, const double* data, size_t count) {
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(count * sizeof(double)));
}
void WriteU64s(std::ofstream& out, const uint64_t* data, size_t count) {
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(count * sizeof(uint64_t)));
}
void WriteU32s(std::ofstream& out, const uint32_t* data, size_t count) {
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(count * sizeof(uint32_t)));
}

bool ReadU32(std::ifstream& in, uint32_t* v) {
  return static_cast<bool>(in.read(reinterpret_cast<char*>(v), sizeof(*v)));
}
bool ReadU64(std::ifstream& in, uint64_t* v) {
  return static_cast<bool>(in.read(reinterpret_cast<char*>(v), sizeof(*v)));
}
bool ReadF64(std::ifstream& in, double* v) {
  return static_cast<bool>(in.read(reinterpret_cast<char*>(v), sizeof(*v)));
}
bool ReadString(std::ifstream& in, std::string* s) {
  uint64_t len = 0;
  if (!ReadU64(in, &len)) return false;
  if (len > (1u << 20)) return false;  // sanity bound on name length
  s->resize(len);
  return static_cast<bool>(in.read(s->data(), static_cast<std::streamsize>(len)));
}
bool ReadDoubles(std::ifstream& in, double* data, size_t count) {
  return static_cast<bool>(
      in.read(reinterpret_cast<char*>(data), static_cast<std::streamsize>(count * sizeof(double))));
}
bool ReadU64s(std::ifstream& in, uint64_t* data, size_t count) {
  return static_cast<bool>(in.read(reinterpret_cast<char*>(data),
                                   static_cast<std::streamsize>(count * sizeof(uint64_t))));
}
bool ReadU32s(std::ifstream& in, uint32_t* data, size_t count) {
  return static_cast<bool>(in.read(reinterpret_cast<char*>(data),
                                   static_cast<std::streamsize>(count * sizeof(uint32_t))));
}

void WriteMeasure(std::ofstream& out, const ot::DiscreteMeasure& m) {
  WriteU64(out, m.size());
  WriteDoubles(out, m.support().data(), m.size());
  WriteDoubles(out, m.weights().data(), m.size());
}

Result<ot::DiscreteMeasure> ReadMeasure(std::ifstream& in) {
  uint64_t n = 0;
  if (!ReadU64(in, &n) || n == 0 || n > (1u << 24))
    return Status::IoError("corrupt measure header");
  std::vector<double> support(n);
  std::vector<double> weights(n);
  if (!ReadDoubles(in, support.data(), n) || !ReadDoubles(in, weights.data(), n))
    return Status::IoError("truncated measure payload");
  return ot::DiscreteMeasure::Create(std::move(support), std::move(weights));
}

}  // namespace

Result<std::vector<double>> ResolveLambdas(const std::vector<double>& lambdas, double t,
                                           size_t s_levels) {
  if (lambdas.empty()) {
    if (s_levels == 2) return std::vector<double>{1.0 - t, t};
    return std::vector<double>(s_levels, 1.0 / static_cast<double>(s_levels));
  }
  if (lambdas.size() != s_levels)
    return Status::InvalidArgument("lambdas must carry one weight per s level");
  double total = 0.0;
  for (double l : lambdas) {
    if (!(l >= 0.0)) return Status::InvalidArgument("lambdas must be non-negative");
    total += l;
  }
  if (total <= 0.0) return Status::InvalidArgument("lambdas must not all be zero");
  std::vector<double> out(lambdas);
  for (double& l : out) l /= total;
  return out;
}

Status ChannelPlan::Validate(double tolerance) const {
  const size_t nq = grid.size();
  if (nq < 2) return Status::FailedPrecondition("channel grid too small");
  if (marginal.size() < 2 || plan.size() != marginal.size())
    return Status::FailedPrecondition("channel must carry one marginal and plan per s level");
  if (barycenter.size() != nq)
    return Status::FailedPrecondition("barycenter support size mismatch");
  for (size_t s = 0; s < marginal.size(); ++s) {
    const ot::SparsePlan& pi = plan[s];
    const ot::DiscreteMeasure& mu = marginal[s];
    if (mu.size() != nq) return Status::FailedPrecondition("marginal support size mismatch");
    if (pi.rows() != nq || pi.cols() != nq)
      return Status::FailedPrecondition("plan matrix shape mismatch");
    // O(nnz) marginal checks on the CSR arrays.
    const std::vector<double> rows = pi.RowSums();
    const std::vector<double> cols = pi.ColSums();
    for (size_t q = 0; q < nq; ++q) {
      if (std::fabs(rows[q] - mu.weight_at(q)) > tolerance)
        return Status::FailedPrecondition("plan row marginal violates mu_s");
      if (std::fabs(cols[q] - barycenter.weight_at(q)) > tolerance)
        return Status::FailedPrecondition("plan column marginal violates barycenter");
    }
  }
  return Status::Ok();
}

RepairPlanSet::RepairPlanSet(size_t dim, std::vector<std::string> feature_names,
                             size_t s_levels, size_t u_levels)
    : dim_(dim),
      s_levels_(s_levels),
      u_levels_(u_levels),
      feature_names_(std::move(feature_names)),
      channels_(u_levels * dim) {
  OTFAIR_CHECK_GT(dim_, 0u);
  OTFAIR_CHECK_GE(s_levels_, 2u);
  OTFAIR_CHECK_GE(u_levels_, 1u);
  OTFAIR_CHECK_EQ(feature_names_.size(), dim_);
  // Default lambdas: uniform over the s levels ({0.5, 0.5} for binary).
  lambdas_.assign(s_levels_, 1.0 / static_cast<double>(s_levels_));
  for (ChannelPlan& channel : channels_) {
    channel.marginal.resize(s_levels_);
    channel.plan.resize(s_levels_);
  }
}

ChannelPlan& RepairPlanSet::At(int u, size_t k) {
  OTFAIR_CHECK(u >= 0 && static_cast<size_t>(u) < u_levels_);
  OTFAIR_CHECK_LT(k, dim_);
  return channels_[static_cast<size_t>(u) * dim_ + k];
}

const ChannelPlan& RepairPlanSet::At(int u, size_t k) const {
  OTFAIR_CHECK(u >= 0 && static_cast<size_t>(u) < u_levels_);
  OTFAIR_CHECK_LT(k, dim_);
  return channels_[static_cast<size_t>(u) * dim_ + k];
}

Status RepairPlanSet::set_lambdas(std::vector<double> lambdas) {
  // Explicit weights only — the setter never defaults, so an empty vector
  // is a size mismatch, and ResolveLambdas carries the one validation/
  // normalization contract (its t is unused on the explicit path).
  if (lambdas.empty())
    return Status::InvalidArgument("lambdas must carry one weight per s level");
  auto resolved = ResolveLambdas(lambdas, /*t=*/0.0, s_levels_);
  if (!resolved.ok()) return resolved.status();
  lambdas_ = std::move(*resolved);
  return Status::Ok();
}

Status RepairPlanSet::Validate(double tolerance) const {
  if (dim_ == 0) return Status::FailedPrecondition("empty plan set");
  for (size_t u = 0; u < u_levels_; ++u) {
    for (size_t k = 0; k < dim_; ++k) {
      const ChannelPlan& channel = At(static_cast<int>(u), k);
      if (channel.s_levels() != s_levels_)
        return Status::FailedPrecondition("channel (u=" + std::to_string(u) +
                                          ", k=" + std::to_string(k) +
                                          "): s-level count mismatch");
      Status status = channel.Validate(tolerance);
      if (!status.ok())
        return Status(status.code(), "channel (u=" + std::to_string(u) +
                                         ", k=" + std::to_string(k) + "): " + status.message());
    }
  }
  return Status::Ok();
}

Status RepairPlanSet::SaveToFile(const std::string& path) const {
  if (dim_ == 0) return Status::FailedPrecondition("cannot save empty plan set");
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  WriteU32(out, kMagic);
  WriteU32(out, kVersionMultiGroup);
  WriteU64(out, dim_);
  WriteF64(out, target_t_);
  WriteU32(out, static_cast<uint32_t>(u_levels_));
  WriteU32(out, static_cast<uint32_t>(s_levels_));
  WriteDoubles(out, lambdas_.data(), lambdas_.size());
  for (const std::string& name : feature_names_) WriteString(out, name);
  for (size_t u = 0; u < u_levels_; ++u) {
    for (size_t k = 0; k < dim_; ++k) {
      const ChannelPlan& channel = At(static_cast<int>(u), k);
      WriteU64(out, channel.grid.size());
      WriteF64(out, channel.grid.lo());
      WriteF64(out, channel.grid.hi());
      for (size_t s = 0; s < s_levels_; ++s) WriteMeasure(out, channel.marginal[s]);
      WriteMeasure(out, channel.barycenter);
      for (size_t s = 0; s < s_levels_; ++s) {
        // CSR payload: nnz, then offsets / column indices / values, each
        // as one contiguous write. The artifact shrinks from O(n_Q^2) to
        // O(nnz) doubles per plan. Offsets go through a u64 staging
        // buffer so the on-disk width is fixed regardless of size_t.
        const ot::SparsePlan& pi = channel.plan[s];
        WriteU64(out, pi.nnz());
        const std::vector<uint64_t> offsets(pi.row_offsets().begin(), pi.row_offsets().end());
        WriteU64s(out, offsets.data(), offsets.size());
        WriteU32s(out, pi.col_indices().data(), pi.nnz());
        WriteDoubles(out, pi.values().data(), pi.nnz());
      }
    }
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<RepairPlanSet> RepairPlanSet::LoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  uint32_t magic = 0;
  uint32_t version = 0;
  if (!ReadU32(in, &magic) || magic != kMagic)
    return Status::IoError("not a repair-plan file: " + path);
  if (!ReadU32(in, &version) ||
      (version != kVersionDense && version != kVersionCsr && version != kVersionMultiGroup))
    return Status::IoError("unsupported plan version in " + path);
  uint64_t dim = 0;
  double target_t = 0.5;
  if (!ReadU64(in, &dim) || dim == 0 || dim > (1u << 16))
    return Status::IoError("corrupt plan header: " + path);
  if (!ReadF64(in, &target_t)) return Status::IoError("corrupt plan header: " + path);
  // v1/v2 are the binary-era formats: two u strata, two s classes, the
  // barycentric weights implied by t.
  size_t u_levels = 2;
  size_t s_levels = 2;
  std::vector<double> lambdas = {1.0 - target_t, target_t};
  if (version == kVersionMultiGroup) {
    uint32_t raw_u = 0;
    uint32_t raw_s = 0;
    if (!ReadU32(in, &raw_u) || !ReadU32(in, &raw_s) || raw_u < 1 || raw_s < 2 ||
        raw_u > data::kMaxAttributeLevels || raw_s > data::kMaxAttributeLevels)
      return Status::IoError("corrupt level counts in " + path);
    u_levels = raw_u;
    s_levels = raw_s;
    lambdas.assign(s_levels, 0.0);
    if (!ReadDoubles(in, lambdas.data(), lambdas.size()))
      return Status::IoError("truncated lambdas in " + path);
  }
  std::vector<std::string> names(dim);
  for (uint64_t k = 0; k < dim; ++k) {
    if (!ReadString(in, &names[k])) return Status::IoError("corrupt feature names: " + path);
  }

  RepairPlanSet set(dim, std::move(names), s_levels, u_levels);
  set.set_target_t(target_t);
  if (Status status = set.set_lambdas(std::move(lambdas)); !status.ok())
    return Status::IoError("corrupt lambdas in " + path + ": " + status.message());
  for (size_t u = 0; u < u_levels; ++u) {
    for (size_t k = 0; k < dim; ++k) {
      ChannelPlan& channel = set.At(static_cast<int>(u), k);
      uint64_t nq = 0;
      double lo = 0.0;
      double hi = 0.0;
      if (!ReadU64(in, &nq) || nq < 2 || nq > (1u << 24))
        return Status::IoError("corrupt channel grid: " + path);
      if (!ReadF64(in, &lo) || !ReadF64(in, &hi))
        return Status::IoError("corrupt channel grid: " + path);
      auto grid = SupportGrid::Create(lo, hi, nq);
      if (!grid.ok()) return grid.status();
      channel.grid = std::move(*grid);
      for (size_t s = 0; s < s_levels; ++s) {
        auto m = ReadMeasure(in);
        if (!m.ok()) return m.status();
        channel.marginal[s] = std::move(*m);
      }
      auto bary = ReadMeasure(in);
      if (!bary.ok()) return bary.status();
      channel.barycenter = std::move(*bary);
      for (size_t s = 0; s < s_levels; ++s) {
        if (version == kVersionDense) {
          // Legacy dense payload: read the full matrix and compress.
          Matrix pi(nq, nq);
          if (!ReadDoubles(in, pi.data(), pi.size()))
            return Status::IoError("truncated plan matrix: " + path);
          channel.plan[s] = ot::SparsePlan::FromDense(pi);
          continue;
        }
        uint64_t nnz = 0;
        if (!ReadU64(in, &nnz) || nnz > nq * nq)
          return Status::IoError("corrupt plan nnz: " + path);
        std::vector<uint64_t> raw_offsets(nq + 1);
        std::vector<uint32_t> cols(nnz);
        std::vector<double> values(nnz);
        if (!ReadU64s(in, raw_offsets.data(), raw_offsets.size()))
          return Status::IoError("truncated plan offsets: " + path);
        if (nnz > 0 && !ReadU32s(in, cols.data(), nnz))
          return Status::IoError("truncated plan columns: " + path);
        if (nnz > 0 && !ReadDoubles(in, values.data(), nnz))
          return Status::IoError("truncated plan values: " + path);
        auto pi = ot::SparsePlan::FromCsr(
            nq, nq, std::vector<size_t>(raw_offsets.begin(), raw_offsets.end()),
            std::move(cols), std::move(values));
        if (!pi.ok())
          return Status::IoError("corrupt CSR plan in " + path + ": " + pi.status().message());
        channel.plan[s] = std::move(*pi);
      }
    }
  }
  Status valid = set.Validate(1e-5);
  if (!valid.ok()) return Status(valid.code(), "loaded plan invalid: " + valid.message());
  return set;
}

}  // namespace otfair::core
