#include "core/repair_plan.h"

#include <cmath>
#include <cstdint>
#include <fstream>

#include "common/check.h"

namespace otfair::core {

using common::Matrix;
using common::Result;
using common::Status;

namespace {

constexpr uint32_t kMagic = 0x4F544652;  // "OTFR"
// v1 stored dense n_Q x n_Q plan matrices; v2 stores CSR plans. Loading
// accepts both (v1 converts on the way in), saving always writes v2.
constexpr uint32_t kVersionDense = 1;
constexpr uint32_t kVersionCsr = 2;

void WriteU32(std::ofstream& out, uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void WriteU64(std::ofstream& out, uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void WriteF64(std::ofstream& out, double v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void WriteString(std::ofstream& out, const std::string& s) {
  WriteU64(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}
void WriteDoubles(std::ofstream& out, const double* data, size_t count) {
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(count * sizeof(double)));
}
void WriteU64s(std::ofstream& out, const uint64_t* data, size_t count) {
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(count * sizeof(uint64_t)));
}
void WriteU32s(std::ofstream& out, const uint32_t* data, size_t count) {
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(count * sizeof(uint32_t)));
}

bool ReadU32(std::ifstream& in, uint32_t* v) {
  return static_cast<bool>(in.read(reinterpret_cast<char*>(v), sizeof(*v)));
}
bool ReadU64(std::ifstream& in, uint64_t* v) {
  return static_cast<bool>(in.read(reinterpret_cast<char*>(v), sizeof(*v)));
}
bool ReadF64(std::ifstream& in, double* v) {
  return static_cast<bool>(in.read(reinterpret_cast<char*>(v), sizeof(*v)));
}
bool ReadString(std::ifstream& in, std::string* s) {
  uint64_t len = 0;
  if (!ReadU64(in, &len)) return false;
  if (len > (1u << 20)) return false;  // sanity bound on name length
  s->resize(len);
  return static_cast<bool>(in.read(s->data(), static_cast<std::streamsize>(len)));
}
bool ReadDoubles(std::ifstream& in, double* data, size_t count) {
  return static_cast<bool>(
      in.read(reinterpret_cast<char*>(data), static_cast<std::streamsize>(count * sizeof(double))));
}
bool ReadU64s(std::ifstream& in, uint64_t* data, size_t count) {
  return static_cast<bool>(in.read(reinterpret_cast<char*>(data),
                                   static_cast<std::streamsize>(count * sizeof(uint64_t))));
}
bool ReadU32s(std::ifstream& in, uint32_t* data, size_t count) {
  return static_cast<bool>(in.read(reinterpret_cast<char*>(data),
                                   static_cast<std::streamsize>(count * sizeof(uint32_t))));
}

void WriteMeasure(std::ofstream& out, const ot::DiscreteMeasure& m) {
  WriteU64(out, m.size());
  WriteDoubles(out, m.support().data(), m.size());
  WriteDoubles(out, m.weights().data(), m.size());
}

Result<ot::DiscreteMeasure> ReadMeasure(std::ifstream& in) {
  uint64_t n = 0;
  if (!ReadU64(in, &n) || n == 0 || n > (1u << 24))
    return Status::IoError("corrupt measure header");
  std::vector<double> support(n);
  std::vector<double> weights(n);
  if (!ReadDoubles(in, support.data(), n) || !ReadDoubles(in, weights.data(), n))
    return Status::IoError("truncated measure payload");
  return ot::DiscreteMeasure::Create(std::move(support), std::move(weights));
}

}  // namespace

Status ChannelPlan::Validate(double tolerance) const {
  const size_t nq = grid.size();
  if (nq < 2) return Status::FailedPrecondition("channel grid too small");
  if (barycenter.size() != nq)
    return Status::FailedPrecondition("barycenter support size mismatch");
  for (int s = 0; s <= 1; ++s) {
    const ot::SparsePlan& pi = plan[static_cast<size_t>(s)];
    const ot::DiscreteMeasure& mu = marginal[static_cast<size_t>(s)];
    if (mu.size() != nq) return Status::FailedPrecondition("marginal support size mismatch");
    if (pi.rows() != nq || pi.cols() != nq)
      return Status::FailedPrecondition("plan matrix shape mismatch");
    // O(nnz) marginal checks on the CSR arrays.
    const std::vector<double> rows = pi.RowSums();
    const std::vector<double> cols = pi.ColSums();
    for (size_t q = 0; q < nq; ++q) {
      if (std::fabs(rows[q] - mu.weight_at(q)) > tolerance)
        return Status::FailedPrecondition("plan row marginal violates mu_s");
      if (std::fabs(cols[q] - barycenter.weight_at(q)) > tolerance)
        return Status::FailedPrecondition("plan column marginal violates barycenter");
    }
  }
  return Status::Ok();
}

RepairPlanSet::RepairPlanSet(size_t dim, std::vector<std::string> feature_names)
    : dim_(dim), feature_names_(std::move(feature_names)), channels_(2 * dim) {
  OTFAIR_CHECK_GT(dim_, 0u);
  OTFAIR_CHECK_EQ(feature_names_.size(), dim_);
}

ChannelPlan& RepairPlanSet::At(int u, size_t k) {
  OTFAIR_CHECK(u == 0 || u == 1);
  OTFAIR_CHECK_LT(k, dim_);
  return channels_[static_cast<size_t>(u) * dim_ + k];
}

const ChannelPlan& RepairPlanSet::At(int u, size_t k) const {
  OTFAIR_CHECK(u == 0 || u == 1);
  OTFAIR_CHECK_LT(k, dim_);
  return channels_[static_cast<size_t>(u) * dim_ + k];
}

Status RepairPlanSet::Validate(double tolerance) const {
  if (dim_ == 0) return Status::FailedPrecondition("empty plan set");
  for (int u = 0; u <= 1; ++u) {
    for (size_t k = 0; k < dim_; ++k) {
      Status status = At(u, k).Validate(tolerance);
      if (!status.ok())
        return Status(status.code(), "channel (u=" + std::to_string(u) +
                                         ", k=" + std::to_string(k) + "): " + status.message());
    }
  }
  return Status::Ok();
}

Status RepairPlanSet::SaveToFile(const std::string& path) const {
  if (dim_ == 0) return Status::FailedPrecondition("cannot save empty plan set");
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  WriteU32(out, kMagic);
  WriteU32(out, kVersionCsr);
  WriteU64(out, dim_);
  WriteF64(out, target_t_);
  for (const std::string& name : feature_names_) WriteString(out, name);
  for (int u = 0; u <= 1; ++u) {
    for (size_t k = 0; k < dim_; ++k) {
      const ChannelPlan& channel = At(u, k);
      WriteU64(out, channel.grid.size());
      WriteF64(out, channel.grid.lo());
      WriteF64(out, channel.grid.hi());
      for (int s = 0; s <= 1; ++s) WriteMeasure(out, channel.marginal[static_cast<size_t>(s)]);
      WriteMeasure(out, channel.barycenter);
      for (int s = 0; s <= 1; ++s) {
        // CSR payload: nnz, then offsets / column indices / values, each
        // as one contiguous write. The artifact shrinks from O(n_Q^2) to
        // O(nnz) doubles per plan. Offsets go through a u64 staging
        // buffer so the on-disk width is fixed regardless of size_t.
        const ot::SparsePlan& pi = channel.plan[static_cast<size_t>(s)];
        WriteU64(out, pi.nnz());
        const std::vector<uint64_t> offsets(pi.row_offsets().begin(), pi.row_offsets().end());
        WriteU64s(out, offsets.data(), offsets.size());
        WriteU32s(out, pi.col_indices().data(), pi.nnz());
        WriteDoubles(out, pi.values().data(), pi.nnz());
      }
    }
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<RepairPlanSet> RepairPlanSet::LoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  uint32_t magic = 0;
  uint32_t version = 0;
  if (!ReadU32(in, &magic) || magic != kMagic)
    return Status::IoError("not a repair-plan file: " + path);
  if (!ReadU32(in, &version) || (version != kVersionDense && version != kVersionCsr))
    return Status::IoError("unsupported plan version in " + path);
  uint64_t dim = 0;
  double target_t = 0.5;
  if (!ReadU64(in, &dim) || dim == 0 || dim > (1u << 16))
    return Status::IoError("corrupt plan header: " + path);
  if (!ReadF64(in, &target_t)) return Status::IoError("corrupt plan header: " + path);
  std::vector<std::string> names(dim);
  for (uint64_t k = 0; k < dim; ++k) {
    if (!ReadString(in, &names[k])) return Status::IoError("corrupt feature names: " + path);
  }

  RepairPlanSet set(dim, std::move(names));
  set.set_target_t(target_t);
  for (int u = 0; u <= 1; ++u) {
    for (size_t k = 0; k < dim; ++k) {
      ChannelPlan& channel = set.At(u, k);
      uint64_t nq = 0;
      double lo = 0.0;
      double hi = 0.0;
      if (!ReadU64(in, &nq) || nq < 2 || nq > (1u << 24))
        return Status::IoError("corrupt channel grid: " + path);
      if (!ReadF64(in, &lo) || !ReadF64(in, &hi))
        return Status::IoError("corrupt channel grid: " + path);
      auto grid = SupportGrid::Create(lo, hi, nq);
      if (!grid.ok()) return grid.status();
      channel.grid = std::move(*grid);
      for (int s = 0; s <= 1; ++s) {
        auto m = ReadMeasure(in);
        if (!m.ok()) return m.status();
        channel.marginal[static_cast<size_t>(s)] = std::move(*m);
      }
      auto bary = ReadMeasure(in);
      if (!bary.ok()) return bary.status();
      channel.barycenter = std::move(*bary);
      for (int s = 0; s <= 1; ++s) {
        if (version == kVersionDense) {
          // Legacy dense payload: read the full matrix and compress.
          Matrix pi(nq, nq);
          if (!ReadDoubles(in, pi.data(), pi.size()))
            return Status::IoError("truncated plan matrix: " + path);
          channel.plan[static_cast<size_t>(s)] = ot::SparsePlan::FromDense(pi);
          continue;
        }
        uint64_t nnz = 0;
        if (!ReadU64(in, &nnz) || nnz > nq * nq)
          return Status::IoError("corrupt plan nnz: " + path);
        std::vector<uint64_t> raw_offsets(nq + 1);
        std::vector<uint32_t> cols(nnz);
        std::vector<double> values(nnz);
        if (!ReadU64s(in, raw_offsets.data(), raw_offsets.size()))
          return Status::IoError("truncated plan offsets: " + path);
        if (nnz > 0 && !ReadU32s(in, cols.data(), nnz))
          return Status::IoError("truncated plan columns: " + path);
        if (nnz > 0 && !ReadDoubles(in, values.data(), nnz))
          return Status::IoError("truncated plan values: " + path);
        auto pi = ot::SparsePlan::FromCsr(
            nq, nq, std::vector<size_t>(raw_offsets.begin(), raw_offsets.end()),
            std::move(cols), std::move(values));
        if (!pi.ok())
          return Status::IoError("corrupt CSR plan in " + path + ": " + pi.status().message());
        channel.plan[static_cast<size_t>(s)] = std::move(*pi);
      }
    }
  }
  Status valid = set.Validate(1e-5);
  if (!valid.ok()) return Status(valid.code(), "loaded plan invalid: " + valid.message());
  return set;
}

}  // namespace otfair::core
