#include "core/repair_plan.h"

#include <cmath>
#include <cstdint>

#include "common/byte_io.h"
#include "common/check.h"
#include "common/crc32.h"
#include "common/file_util.h"
#include "data/dataset.h"

namespace otfair::core {

using common::ByteReader;
using common::ByteWriter;
using common::Matrix;
using common::Result;
using common::Status;

namespace {

constexpr uint32_t kMagic = 0x4F544652;  // "OTFR"
// v1 stored dense n_Q x n_Q plan matrices; v2 stores CSR plans; v3 adds
// the |U|/|S| level counts and barycentric lambdas of the multi-group
// pipeline. Loading accepts all three (v1/v2 map to the binary levels),
// saving always writes v3.
constexpr uint32_t kVersionDense = 1;
constexpr uint32_t kVersionCsr = 2;
constexpr uint32_t kVersionMultiGroup = 3;
// v4 = the v3 layout plus a trailing CRC32 of everything before it. The
// structural checks catch truncation and inflated counts, but without a
// checksum a bit flip inside a double payload is invisible — it just
// shifts a weight by an undetectable amount. v4 closes that hole; v1-v3
// files keep loading without one.
constexpr uint32_t kVersionChecksummed = 4;

void WriteMeasure(ByteWriter& out, const ot::DiscreteMeasure& m) {
  out.U64(m.size());
  out.Doubles(m.support().data(), m.size());
  out.Doubles(m.weights().data(), m.size());
}

Result<ot::DiscreteMeasure> ReadMeasure(ByteReader& in) {
  uint64_t n = 0;
  if (!in.U64(&n) || n == 0 || n > (1u << 24))
    return Status::IoError("corrupt measure header");
  // The payload is 2n doubles; reject before allocating when the bytes
  // cannot possibly be there (a corrupt count field must not drive a
  // multi-gigabyte allocation).
  if (!in.Fits(2 * n, sizeof(double)))
    return Status::IoError("truncated measure payload");
  std::vector<double> support(n);
  std::vector<double> weights(n);
  if (!in.Doubles(support.data(), n) || !in.Doubles(weights.data(), n))
    return Status::IoError("truncated measure payload");
  // FromNormalized keeps the stored weights bit-for-bit (the writer only
  // ever serializes valid measures), so parse is an exact inverse of
  // serialize and recovered plans re-serialize byte-identically.
  return ot::DiscreteMeasure::FromNormalized(std::move(support), std::move(weights));
}

}  // namespace

Result<std::vector<double>> ResolveLambdas(const std::vector<double>& lambdas, double t,
                                           size_t s_levels) {
  if (lambdas.empty()) {
    if (s_levels == 2) return std::vector<double>{1.0 - t, t};
    return std::vector<double>(s_levels, 1.0 / static_cast<double>(s_levels));
  }
  if (lambdas.size() != s_levels)
    return Status::InvalidArgument("lambdas must carry one weight per s level");
  double total = 0.0;
  for (double l : lambdas) {
    if (!(l >= 0.0)) return Status::InvalidArgument("lambdas must be non-negative");
    total += l;
  }
  if (total <= 0.0) return Status::InvalidArgument("lambdas must not all be zero");
  std::vector<double> out(lambdas);
  for (double& l : out) l /= total;
  return out;
}

Status ChannelPlan::Validate(double tolerance) const {
  const size_t nq = grid.size();
  if (nq < 2) return Status::FailedPrecondition("channel grid too small");
  if (marginal.size() < 2 || plan.size() != marginal.size())
    return Status::FailedPrecondition("channel must carry one marginal and plan per s level");
  if (barycenter.size() != nq)
    return Status::FailedPrecondition("barycenter support size mismatch");
  for (size_t s = 0; s < marginal.size(); ++s) {
    const ot::SparsePlan& pi = plan[s];
    const ot::DiscreteMeasure& mu = marginal[s];
    if (mu.size() != nq) return Status::FailedPrecondition("marginal support size mismatch");
    if (pi.rows() != nq || pi.cols() != nq)
      return Status::FailedPrecondition("plan matrix shape mismatch");
    // O(nnz) marginal checks on the CSR arrays.
    const std::vector<double> rows = pi.RowSums();
    const std::vector<double> cols = pi.ColSums();
    for (size_t q = 0; q < nq; ++q) {
      if (std::fabs(rows[q] - mu.weight_at(q)) > tolerance)
        return Status::FailedPrecondition("plan row marginal violates mu_s");
      if (std::fabs(cols[q] - barycenter.weight_at(q)) > tolerance)
        return Status::FailedPrecondition("plan column marginal violates barycenter");
    }
  }
  return Status::Ok();
}

RepairPlanSet::RepairPlanSet(size_t dim, std::vector<std::string> feature_names,
                             size_t s_levels, size_t u_levels)
    : dim_(dim),
      s_levels_(s_levels),
      u_levels_(u_levels),
      feature_names_(std::move(feature_names)),
      channels_(u_levels * dim) {
  OTFAIR_CHECK_GT(dim_, 0u);
  OTFAIR_CHECK_GE(s_levels_, 2u);
  OTFAIR_CHECK_GE(u_levels_, 1u);
  OTFAIR_CHECK_EQ(feature_names_.size(), dim_);
  // Default lambdas: uniform over the s levels ({0.5, 0.5} for binary).
  lambdas_.assign(s_levels_, 1.0 / static_cast<double>(s_levels_));
  for (ChannelPlan& channel : channels_) {
    channel.marginal.resize(s_levels_);
    channel.plan.resize(s_levels_);
  }
}

ChannelPlan& RepairPlanSet::At(int u, size_t k) {
  OTFAIR_CHECK(u >= 0 && static_cast<size_t>(u) < u_levels_);
  OTFAIR_CHECK_LT(k, dim_);
  return channels_[static_cast<size_t>(u) * dim_ + k];
}

const ChannelPlan& RepairPlanSet::At(int u, size_t k) const {
  OTFAIR_CHECK(u >= 0 && static_cast<size_t>(u) < u_levels_);
  OTFAIR_CHECK_LT(k, dim_);
  return channels_[static_cast<size_t>(u) * dim_ + k];
}

Status RepairPlanSet::set_lambdas(std::vector<double> lambdas) {
  // Explicit weights only — the setter never defaults, so an empty vector
  // is a size mismatch, and ResolveLambdas carries the one validation/
  // normalization contract (its t is unused on the explicit path).
  if (lambdas.empty())
    return Status::InvalidArgument("lambdas must carry one weight per s level");
  auto resolved = ResolveLambdas(lambdas, /*t=*/0.0, s_levels_);
  if (!resolved.ok()) return resolved.status();
  lambdas_ = std::move(*resolved);
  return Status::Ok();
}

Status RepairPlanSet::Validate(double tolerance) const {
  if (dim_ == 0) return Status::FailedPrecondition("empty plan set");
  for (size_t u = 0; u < u_levels_; ++u) {
    for (size_t k = 0; k < dim_; ++k) {
      const ChannelPlan& channel = At(static_cast<int>(u), k);
      if (channel.s_levels() != s_levels_)
        return Status::FailedPrecondition("channel (u=" + std::to_string(u) +
                                          ", k=" + std::to_string(k) +
                                          "): s-level count mismatch");
      Status status = channel.Validate(tolerance);
      if (!status.ok())
        return Status(status.code(), "channel (u=" + std::to_string(u) +
                                         ", k=" + std::to_string(k) + "): " + status.message());
    }
  }
  return Status::Ok();
}

std::string RepairPlanSet::SerializeToString() const {
  std::string bytes;
  ByteWriter out(&bytes);
  out.U32(kMagic);
  out.U32(kVersionChecksummed);
  out.U64(dim_);
  out.F64(target_t_);
  out.U32(static_cast<uint32_t>(u_levels_));
  out.U32(static_cast<uint32_t>(s_levels_));
  out.Doubles(lambdas_.data(), lambdas_.size());
  for (const std::string& name : feature_names_) out.String(name);
  for (size_t u = 0; u < u_levels_; ++u) {
    for (size_t k = 0; k < dim_; ++k) {
      const ChannelPlan& channel = At(static_cast<int>(u), k);
      out.U64(channel.grid.size());
      out.F64(channel.grid.lo());
      out.F64(channel.grid.hi());
      for (size_t s = 0; s < s_levels_; ++s) WriteMeasure(out, channel.marginal[s]);
      WriteMeasure(out, channel.barycenter);
      for (size_t s = 0; s < s_levels_; ++s) {
        // CSR payload: nnz, then offsets / column indices / values, each
        // as one contiguous write. The artifact shrinks from O(n_Q^2) to
        // O(nnz) doubles per plan. Offsets go through a u64 staging
        // buffer so the on-disk width is fixed regardless of size_t.
        const ot::SparsePlan& pi = channel.plan[s];
        out.U64(pi.nnz());
        const std::vector<uint64_t> offsets(pi.row_offsets().begin(), pi.row_offsets().end());
        out.U64s(offsets.data(), offsets.size());
        out.U32s(pi.col_indices().data(), pi.nnz());
        out.Doubles(pi.values().data(), pi.nnz());
      }
    }
  }
  out.U32(common::Crc32(bytes.data(), bytes.size()));
  return bytes;
}

Status RepairPlanSet::SaveToFile(const std::string& path) const {
  if (dim_ == 0) return Status::FailedPrecondition("cannot save empty plan set");
  // Serialize fully in memory, then replace the file atomically: a crash
  // mid-save leaves the previous artifact intact, never a torn file.
  return common::AtomicWriteFile(path, SerializeToString());
}

Result<RepairPlanSet> RepairPlanSet::ParseFromBuffer(const char* data, size_t size,
                                                     const std::string& context) {
  ByteReader in(data, size);
  uint32_t magic = 0;
  uint32_t version = 0;
  if (!in.U32(&magic) || magic != kMagic)
    return Status::IoError("not a repair-plan file: " + context);
  if (!in.U32(&version) ||
      (version != kVersionDense && version != kVersionCsr &&
       version != kVersionMultiGroup && version != kVersionChecksummed))
    return Status::IoError("unsupported plan version in " + context);
  uint64_t dim = 0;
  double target_t = 0.5;
  if (!in.U64(&dim) || dim == 0 || dim > (1u << 16))
    return Status::IoError("corrupt plan header: " + context);
  if (!in.F64(&target_t) || !std::isfinite(target_t))
    return Status::IoError("corrupt plan header: " + context);
  // v1/v2 are the binary-era formats: two u strata, two s classes, the
  // barycentric weights implied by t.
  size_t u_levels = 2;
  size_t s_levels = 2;
  std::vector<double> lambdas = {1.0 - target_t, target_t};
  if (version >= kVersionMultiGroup) {
    uint32_t raw_u = 0;
    uint32_t raw_s = 0;
    if (!in.U32(&raw_u) || !in.U32(&raw_s) || raw_u < 1 || raw_s < 2 ||
        raw_u > data::kMaxAttributeLevels || raw_s > data::kMaxAttributeLevels)
      return Status::IoError("corrupt level counts in " + context);
    u_levels = raw_u;
    s_levels = raw_s;
    if (!in.Fits(s_levels, sizeof(double)))
      return Status::IoError("truncated lambdas in " + context);
    lambdas.assign(s_levels, 0.0);
    if (!in.Doubles(lambdas.data(), lambdas.size()))
      return Status::IoError("truncated lambdas in " + context);
  }
  std::vector<std::string> names(dim);
  for (uint64_t k = 0; k < dim; ++k) {
    if (!in.String(&names[k], /*max_len=*/1u << 20))
      return Status::IoError("corrupt feature names: " + context);
  }

  RepairPlanSet set(dim, std::move(names), s_levels, u_levels);
  set.set_target_t(target_t);
  if (Status status = set.set_lambdas(std::move(lambdas)); !status.ok())
    return Status::IoError("corrupt lambdas in " + context + ": " + status.message());
  for (size_t u = 0; u < u_levels; ++u) {
    for (size_t k = 0; k < dim; ++k) {
      ChannelPlan& channel = set.At(static_cast<int>(u), k);
      uint64_t nq = 0;
      double lo = 0.0;
      double hi = 0.0;
      if (!in.U64(&nq) || nq < 2 || nq > (1u << 24))
        return Status::IoError("corrupt channel grid: " + context);
      if (!in.F64(&lo) || !in.F64(&hi))
        return Status::IoError("corrupt channel grid: " + context);
      auto grid = SupportGrid::Create(lo, hi, nq);
      if (!grid.ok()) return grid.status();
      channel.grid = std::move(*grid);
      for (size_t s = 0; s < s_levels; ++s) {
        auto m = ReadMeasure(in);
        if (!m.ok()) return m.status();
        channel.marginal[s] = std::move(*m);
      }
      auto bary = ReadMeasure(in);
      if (!bary.ok()) return bary.status();
      channel.barycenter = std::move(*bary);
      for (size_t s = 0; s < s_levels; ++s) {
        if (version == kVersionDense) {
          // Legacy dense payload: read the full matrix and compress. The
          // nq x nq doubles must actually be present before the matrix
          // (up to gigabytes for a corrupt nq) is allocated.
          if (!in.Fits(nq * nq, sizeof(double)))
            return Status::IoError("truncated plan matrix: " + context);
          Matrix pi(nq, nq);
          if (!in.Doubles(pi.data(), pi.size()))
            return Status::IoError("truncated plan matrix: " + context);
          channel.plan[s] = ot::SparsePlan::FromDense(pi);
          continue;
        }
        uint64_t nnz = 0;
        if (!in.U64(&nnz) || nnz > nq * nq)
          return Status::IoError("corrupt plan nnz: " + context);
        if (!in.Fits(nq + 1, sizeof(uint64_t)) ||
            in.remaining() < (nq + 1) * sizeof(uint64_t) +
                                 nnz * (sizeof(uint32_t) + sizeof(double)))
          return Status::IoError("truncated CSR plan in " + context);
        std::vector<uint64_t> raw_offsets(nq + 1);
        std::vector<uint32_t> cols(nnz);
        std::vector<double> values(nnz);
        if (!in.U64s(raw_offsets.data(), raw_offsets.size()))
          return Status::IoError("truncated plan offsets: " + context);
        if (nnz > 0 && !in.U32s(cols.data(), nnz))
          return Status::IoError("truncated plan columns: " + context);
        if (nnz > 0 && !in.Doubles(values.data(), nnz))
          return Status::IoError("truncated plan values: " + context);
        auto pi = ot::SparsePlan::FromCsr(
            nq, nq, std::vector<size_t>(raw_offsets.begin(), raw_offsets.end()),
            std::move(cols), std::move(values));
        if (!pi.ok())
          return Status::IoError("corrupt CSR plan in " + context + ": " + pi.status().message());
        channel.plan[s] = std::move(*pi);
      }
    }
  }
  if (version == kVersionChecksummed) {
    uint32_t stored_crc = 0;
    if (!in.U32(&stored_crc))
      return Status::IoError("missing plan checksum in " + context);
    if (!in.exhausted())
      return Status::IoError("trailing bytes after plan payload in " + context);
    const uint32_t actual_crc = common::Crc32(data, size - sizeof(uint32_t));
    if (stored_crc != actual_crc)
      return Status::IoError("plan checksum mismatch in " + context);
  } else if (!in.exhausted()) {
    return Status::IoError("trailing bytes after plan payload in " + context);
  }
  Status valid = set.Validate(1e-5);
  if (!valid.ok()) return Status(valid.code(), "loaded plan invalid: " + valid.message());
  return set;
}

Result<RepairPlanSet> RepairPlanSet::LoadFromFile(const std::string& path) {
  auto bytes = common::ReadFileToString(path);
  if (!bytes.ok()) return bytes.status();
  return ParseFromBuffer(bytes->data(), bytes->size(), path);
}

}  // namespace otfair::core
