#include "core/designer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "common/status.h"
#include "obs/trace.h"
#include "ot/barycenter.h"
#include "ot/solver.h"

namespace otfair::core {

using common::Result;
using common::Status;

namespace {

/// Shared option validation + plan-set skeleton for both design entry
/// points. On success the plan set has its lambdas and target_t resolved;
/// `pairwise_t` receives the binary geodesic position actually designed at.
Result<RepairPlanSet> PreparePlans(size_t dim, std::vector<std::string> feature_names,
                                   size_t s_levels, size_t u_levels,
                                   const DesignOptions& options, double* pairwise_t) {
  if (options.n_q < 2) return Status::InvalidArgument("n_q must be >= 2");
  if (!(options.target_t >= 0.0 && options.target_t <= 1.0))
    return Status::InvalidArgument("target_t must lie in [0, 1]");
  if (options.threads < 0)
    return Status::InvalidArgument("threads must be >= 1 (or 0 for the process default)");

  // Resolve the barycentric weights (see ResolveLambdas: the binary
  // default {1 - t, t} keeps the paper's single-knob geodesic
  // parameterization and its exact arithmetic).
  auto lambdas = ResolveLambdas(options.lambdas, options.target_t, s_levels);
  if (!lambdas.ok()) return lambdas.status();

  RepairPlanSet plans(dim, std::move(feature_names), s_levels, u_levels);
  if (Status status = plans.set_lambdas(std::move(*lambdas)); !status.ok()) return status;
  // Post-normalization weights drive the barycenters below. In the
  // default binary case the raw target_t is used directly, so the paper's
  // t-parameterized path is untouched by the normalization roundoff.
  *pairwise_t = options.lambdas.empty() ? options.target_t : plans.lambdas()[1];
  // The persisted t metadata reflects the geodesic position actually
  // designed at: explicit binary lambdas override options.target_t.
  plans.set_target_t(s_levels == 2 ? *pairwise_t : options.target_t);
  return plans;
}

/// Steps (i)-(iv) of Algorithm 1 for one (u, k) channel, from materialized
/// samples: `stratum_samples` spans the whole u-stratum (support range),
/// `samples_by_s` carries the |S| conditional samples. Both design entry
/// points funnel through here, so plan geometry is independent of whether
/// the samples came from research rows or sketch quantile probes.
Status DesignChannelFromSamples(const DesignOptions& options, const ot::Solver& solver,
                                const std::vector<double>& lam, double pairwise_t,
                                size_t s_levels, const std::vector<double>& stratum_samples,
                                const std::vector<std::vector<double>>& samples_by_s,
                                ChannelPlan* channel) {
  OTFAIR_TRACE_SPAN("design_channel");
  // (i) Interpolated support over the stratum's range (Algorithm 1,
  // lines 3-5).
  auto grid = SupportGrid::FromSamples(stratum_samples, options.n_q);
  if (!grid.ok()) return grid.status();
  channel->grid = std::move(*grid);

  // (ii) KDE-interpolated s-conditional marginals (line 8, Eq. 11).
  for (size_t s = 0; s < s_levels; ++s) {
    auto marginal = InterpolateMarginal(samples_by_s[s], channel->grid, options.marginal);
    if (!marginal.ok()) return marginal.status();
    channel->marginal[s] = std::move(*marginal);
  }

  // (iii) Barycentric repair target on the same support (line 9, Eq. 7).
  // |S| = 2 takes the paper's pairwise t-geodesic path (bit-identical to
  // the binary-era pipeline); |S| > 2 the N-measure weighted-quantile
  // barycenter F^{-1} = sum_s lambda_s F_s^{-1}.
  Result<ot::DiscreteMeasure> barycenter =
      s_levels == 2
          ? ot::QuantileBarycenterOnGrid(channel->marginal[0], channel->marginal[1],
                                         pairwise_t, channel->grid.points())
          : ot::QuantileBarycenterOnGrid(channel->marginal, lam, channel->grid.points());
  if (!barycenter.ok()) return barycenter.status();
  channel->barycenter = std::move(*barycenter);

  // (iv) The |S| OT plans mu_s -> nu (lines 10-11, Eq. 13). Marginals
  // and barycentre all live on the sorted grid, so the backend's 1-D
  // solve applies directly and its entries index grid states. The
  // sparse-native solve keeps the monotone staircase (and the exact
  // solver's support set) in CSR form end to end — nothing densifies.
  for (size_t s = 0; s < s_levels; ++s) {
    OTFAIR_TRACE_SPAN("channel_solve");
    auto plan = solver.Solve1DSparse(channel->marginal[s], channel->barycenter);
    if (!plan.ok()) return plan.status();
    channel->plan[s] = std::move(*plan);
  }
  return Status::Ok();
}

}  // namespace

Result<RepairPlanSet> DesignDistributionalRepair(const data::Dataset& research,
                                                 const DesignOptions& options) {
  if (research.empty()) return Status::InvalidArgument("empty research dataset");
  const ot::Solver& solver = options.solver ? *options.solver : *ot::DefaultSolver();
  const size_t s_levels = research.s_levels();
  const size_t u_levels = research.u_levels();

  double pairwise_t = options.target_t;
  auto prepared = PreparePlans(research.dim(), research.feature_names(), s_levels, u_levels,
                               options, &pairwise_t);
  if (!prepared.ok()) return prepared.status();
  RepairPlanSet plans = std::move(*prepared);
  const std::vector<double>& lam = plans.lambdas();

  // Row-index strata, gathered (and validated) up front so the channel
  // designs below are fully independent of one another.
  struct Stratum {
    std::vector<std::vector<size_t>> idx_by_s;  // per s level
    std::vector<size_t> idx_all;                // all u rows
  };
  std::vector<Stratum> strata(u_levels);
  for (size_t u = 0; u < u_levels; ++u) {
    Stratum& stratum = strata[u];
    stratum.idx_by_s.resize(s_levels);
    for (size_t s = 0; s < s_levels; ++s) {
      stratum.idx_by_s[s] =
          research.GroupIndices({static_cast<int>(u), static_cast<int>(s)});
      if (stratum.idx_by_s[s].size() < options.min_group_size)
        return Status::FailedPrecondition(
            "research group (u=" + std::to_string(u) + ", s=" + std::to_string(s) +
            ") lacks labelled rows; collect more research data");
    }
    stratum.idx_all = research.UIndices(static_cast<int>(u));
  }

  auto design_channel = [&](size_t u, size_t k) -> Status {
    const Stratum& stratum = strata[u];
    std::vector<std::vector<double>> samples_by_s(s_levels);
    for (size_t s = 0; s < s_levels; ++s)
      samples_by_s[s] = research.FeatureColumn(k, stratum.idx_by_s[s]);
    return DesignChannelFromSamples(options, solver, lam, pairwise_t, s_levels,
                                    research.FeatureColumn(k, stratum.idx_all), samples_by_s,
                                    &plans.At(static_cast<int>(u), k));
  };

  // The d * |U| channels are independent: each task writes only its own
  // ChannelPlan slot, so any schedule produces bit-identical plans (and
  // a deterministic first error). Task order (u-major, k-minor) matches
  // the historical serial loop.
  const size_t dim = research.dim();
  Status status = common::parallel::ParallelForStatus(
      0, u_levels * dim,
      [&](size_t task) { return design_channel(task / dim, task % dim); },
      static_cast<size_t>(options.threads));
  if (!status.ok()) return status;
  return plans;
}

Result<RepairPlanSet> DesignFromQuantileFunctions(
    size_t dim, std::vector<std::string> feature_names, size_t s_levels, size_t u_levels,
    const std::vector<StreamChannelQuantiles>& channels, const DesignOptions& options) {
  if (dim == 0) return Status::InvalidArgument("dim must be >= 1");
  if (s_levels < 2) return Status::InvalidArgument("s_levels must be >= 2");
  if (u_levels < 1) return Status::InvalidArgument("u_levels must be >= 1");
  if (channels.size() != u_levels * s_levels * dim)
    return Status::InvalidArgument(
        "expected " + std::to_string(u_levels * s_levels * dim) + " channels (" +
        "(u * s_levels + s) * dim + k order), got " + std::to_string(channels.size()));
  if (options.quantile_pseudo_samples < 2)
    return Status::InvalidArgument("quantile_pseudo_samples must be >= 2");
  const ot::Solver& solver = options.solver ? *options.solver : *ot::DefaultSolver();

  double pairwise_t = options.target_t;
  auto prepared = PreparePlans(dim, std::move(feature_names), s_levels, u_levels, options,
                               &pairwise_t);
  if (!prepared.ok()) return prepared.status();
  RepairPlanSet plans = std::move(*prepared);
  const std::vector<double>& lam = plans.lambdas();

  // Materialize each channel's quantile function as midpoint probes
  // Q((i + 0.5) / n) — deterministic, and an unbiased stand-in for an
  // n-point equal-mass sample of the streamed distribution. Rejects thin
  // channels (mirroring the dataset path's min_group_size gate) and
  // broken quantile functions up front, before any solver work.
  auto probe_channel = [&](size_t u, size_t s, size_t k,
                           std::vector<double>* out) -> Status {
    const StreamChannelQuantiles& channel = channels[(u * s_levels + s) * dim + k];
    const std::string tag = "(u=" + std::to_string(u) + ", s=" + std::to_string(s) +
                            ", k=" + std::to_string(k) + ")";
    if (!channel.quantile)
      return Status::InvalidArgument("channel " + tag + " has no quantile function");
    if (channel.count < options.min_group_size)
      return Status::FailedPrecondition(
          "stream channel " + tag + " has only " + std::to_string(channel.count) +
          " observations; need " + std::to_string(options.min_group_size) +
          " before redesign");
    const size_t n = std::min<uint64_t>(channel.count, options.quantile_pseudo_samples);
    out->resize(n);
    double prev = -std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < n; ++i) {
      const double p = (static_cast<double>(i) + 0.5) / static_cast<double>(n);
      const double x = channel.quantile(p);
      if (!std::isfinite(x))
        return Status::InvalidArgument("quantile function for channel " + tag +
                                       " returned a non-finite value");
      if (x < prev)
        return Status::InvalidArgument("quantile function for channel " + tag +
                                       " is not monotone");
      prev = x;
      (*out)[i] = x;
    }
    return Status::Ok();
  };

  auto design_channel = [&](size_t u, size_t k) -> Status {
    std::vector<std::vector<double>> samples_by_s(s_levels);
    std::vector<double> stratum_samples;
    for (size_t s = 0; s < s_levels; ++s) {
      OTFAIR_RETURN_IF_ERROR(probe_channel(u, s, k, &samples_by_s[s]));
      stratum_samples.insert(stratum_samples.end(), samples_by_s[s].begin(),
                             samples_by_s[s].end());
    }
    return DesignChannelFromSamples(options, solver, lam, pairwise_t, s_levels,
                                    stratum_samples, samples_by_s,
                                    &plans.At(static_cast<int>(u), k));
  };

  Status status = common::parallel::ParallelForStatus(
      0, u_levels * dim,
      [&](size_t task) { return design_channel(task / dim, task % dim); },
      static_cast<size_t>(options.threads));
  if (!status.ok()) return status;
  return plans;
}

}  // namespace otfair::core
