#include "core/designer.h"

#include <string>
#include <utility>

#include "common/status.h"
#include "ot/barycenter.h"
#include "ot/solver.h"

namespace otfair::core {

using common::Result;
using common::Status;

Result<RepairPlanSet> DesignDistributionalRepair(const data::Dataset& research,
                                                 const DesignOptions& options) {
  if (research.empty()) return Status::InvalidArgument("empty research dataset");
  if (options.n_q < 2) return Status::InvalidArgument("n_q must be >= 2");
  if (!(options.target_t >= 0.0 && options.target_t <= 1.0))
    return Status::InvalidArgument("target_t must lie in [0, 1]");
  const ot::Solver& solver = options.solver ? *options.solver : *ot::DefaultSolver();

  RepairPlanSet plans(research.dim(), research.feature_names());
  plans.set_target_t(options.target_t);

  for (int u = 0; u <= 1; ++u) {
    const std::vector<size_t> idx0 = research.GroupIndices({u, 0});
    const std::vector<size_t> idx1 = research.GroupIndices({u, 1});
    if (idx0.size() < options.min_group_size || idx1.size() < options.min_group_size)
      return Status::FailedPrecondition(
          "research group (u=" + std::to_string(u) +
          ") lacks labelled rows for one or both s classes; collect more research data");
    const std::vector<size_t> idx_all = research.UIndices(u);

    for (size_t k = 0; k < research.dim(); ++k) {
      ChannelPlan& channel = plans.At(u, k);

      // (i) Interpolated support over the u-stratum's research range
      // (Algorithm 1, lines 3-5).
      auto grid = SupportGrid::FromSamples(research.FeatureColumn(k, idx_all), options.n_q);
      if (!grid.ok()) return grid.status();
      channel.grid = std::move(*grid);

      // (ii) KDE-interpolated s-conditional marginals (line 8, Eq. 11).
      for (int s = 0; s <= 1; ++s) {
        auto marginal = InterpolateMarginal(
            research.FeatureColumn(k, s == 0 ? idx0 : idx1), channel.grid, options.marginal);
        if (!marginal.ok()) return marginal.status();
        channel.marginal[static_cast<size_t>(s)] = std::move(*marginal);
      }

      // (iii) Barycentric repair target on the same support (line 9, Eq. 7).
      auto barycenter =
          ot::QuantileBarycenterOnGrid(channel.marginal[0], channel.marginal[1],
                                       options.target_t, channel.grid.points());
      if (!barycenter.ok()) return barycenter.status();
      channel.barycenter = std::move(*barycenter);

      // (iv) The two OT plans mu_s -> nu (lines 10-11, Eq. 13). Marginals
      // and barycentre all live on the sorted grid, so the backend's 1-D
      // solve applies directly and its entries index grid states.
      for (int s = 0; s <= 1; ++s) {
        auto plan =
            solver.Solve1DDense(channel.marginal[static_cast<size_t>(s)], channel.barycenter);
        if (!plan.ok()) return plan.status();
        channel.plan[static_cast<size_t>(s)] = std::move(*plan);
      }
    }
  }
  return plans;
}

}  // namespace otfair::core
