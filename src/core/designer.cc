#include "core/designer.h"

#include <string>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "common/status.h"
#include "ot/barycenter.h"
#include "ot/solver.h"

namespace otfair::core {

using common::Result;
using common::Status;

Result<RepairPlanSet> DesignDistributionalRepair(const data::Dataset& research,
                                                 const DesignOptions& options) {
  if (research.empty()) return Status::InvalidArgument("empty research dataset");
  if (options.n_q < 2) return Status::InvalidArgument("n_q must be >= 2");
  if (!(options.target_t >= 0.0 && options.target_t <= 1.0))
    return Status::InvalidArgument("target_t must lie in [0, 1]");
  if (options.threads < 0)
    return Status::InvalidArgument("threads must be >= 1 (or 0 for the process default)");
  const ot::Solver& solver = options.solver ? *options.solver : *ot::DefaultSolver();

  RepairPlanSet plans(research.dim(), research.feature_names());
  plans.set_target_t(options.target_t);

  // Row-index strata, gathered (and validated) up front so the channel
  // designs below are fully independent of one another.
  struct Stratum {
    std::vector<size_t> idx0;     // (u, s=0) rows
    std::vector<size_t> idx1;     // (u, s=1) rows
    std::vector<size_t> idx_all;  // all u rows
  };
  Stratum strata[2];
  for (int u = 0; u <= 1; ++u) {
    Stratum& stratum = strata[u];
    stratum.idx0 = research.GroupIndices({u, 0});
    stratum.idx1 = research.GroupIndices({u, 1});
    if (stratum.idx0.size() < options.min_group_size ||
        stratum.idx1.size() < options.min_group_size)
      return Status::FailedPrecondition(
          "research group (u=" + std::to_string(u) +
          ") lacks labelled rows for one or both s classes; collect more research data");
    stratum.idx_all = research.UIndices(u);
  }

  auto design_channel = [&](int u, size_t k) -> Status {
    const Stratum& stratum = strata[u];
    ChannelPlan& channel = plans.At(u, k);

    // (i) Interpolated support over the u-stratum's research range
    // (Algorithm 1, lines 3-5).
    auto grid = SupportGrid::FromSamples(research.FeatureColumn(k, stratum.idx_all),
                                         options.n_q);
    if (!grid.ok()) return grid.status();
    channel.grid = std::move(*grid);

    // (ii) KDE-interpolated s-conditional marginals (line 8, Eq. 11).
    for (int s = 0; s <= 1; ++s) {
      auto marginal = InterpolateMarginal(
          research.FeatureColumn(k, s == 0 ? stratum.idx0 : stratum.idx1), channel.grid,
          options.marginal);
      if (!marginal.ok()) return marginal.status();
      channel.marginal[static_cast<size_t>(s)] = std::move(*marginal);
    }

    // (iii) Barycentric repair target on the same support (line 9, Eq. 7).
    auto barycenter = ot::QuantileBarycenterOnGrid(channel.marginal[0], channel.marginal[1],
                                                   options.target_t, channel.grid.points());
    if (!barycenter.ok()) return barycenter.status();
    channel.barycenter = std::move(*barycenter);

    // (iv) The two OT plans mu_s -> nu (lines 10-11, Eq. 13). Marginals
    // and barycentre all live on the sorted grid, so the backend's 1-D
    // solve applies directly and its entries index grid states. The
    // sparse-native solve keeps the monotone staircase (and the exact
    // solver's support set) in CSR form end to end — nothing densifies.
    for (int s = 0; s <= 1; ++s) {
      auto plan =
          solver.Solve1DSparse(channel.marginal[static_cast<size_t>(s)], channel.barycenter);
      if (!plan.ok()) return plan.status();
      channel.plan[static_cast<size_t>(s)] = std::move(*plan);
    }
    return Status::Ok();
  };

  // The d * |U| channels are independent: each task writes only its own
  // ChannelPlan slot, so any schedule produces bit-identical plans (and
  // a deterministic first error). Task order (u-major, k-minor) matches
  // the historical serial loop.
  const size_t dim = research.dim();
  Status status = common::parallel::ParallelForStatus(
      0, 2 * dim,
      [&](size_t task) { return design_channel(task < dim ? 0 : 1, task % dim); },
      static_cast<size_t>(options.threads));
  if (!status.ok()) return status;
  return plans;
}

}  // namespace otfair::core
