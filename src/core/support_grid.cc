#include "core/support_grid.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/status.h"

namespace otfair::core {

using common::Result;
using common::Status;

namespace {
/// Half-width used to widen a zero-spread sample range.
constexpr double kDegenerateHalfWidth = 0.5;
}  // namespace

SupportGrid::SupportGrid(std::vector<double> points) : points_(std::move(points)) {
  OTFAIR_CHECK_GE(points_.size(), 2u);
  step_ = (points_.back() - points_.front()) / static_cast<double>(points_.size() - 1);
}

Result<SupportGrid> SupportGrid::Create(double lo, double hi, size_t n) {
  if (n < 2) return Status::InvalidArgument("grid needs at least two states");
  if (!std::isfinite(lo) || !std::isfinite(hi))
    return Status::InvalidArgument("grid bounds must be finite");
  if (!(hi > lo)) {
    const double centre = 0.5 * (lo + hi);
    lo = centre - kDegenerateHalfWidth;
    hi = centre + kDegenerateHalfWidth;
  }
  std::vector<double> points(n);
  const double nq = static_cast<double>(n);
  for (size_t i = 1; i <= n; ++i) {
    // Literal transcription of Algorithm 1, line 4.
    const double fi = static_cast<double>(i);
    points[i - 1] = (nq - fi) / (nq - 1.0) * lo + (fi - 1.0) / (nq - 1.0) * hi;
  }
  return SupportGrid(std::move(points));
}

Result<SupportGrid> SupportGrid::FromSamples(const std::vector<double>& samples, size_t n) {
  if (samples.empty()) return Status::InvalidArgument("empty sample");
  const auto [lo_it, hi_it] = std::minmax_element(samples.begin(), samples.end());
  return Create(*lo_it, *hi_it, n);
}

SupportGrid::Location SupportGrid::Locate(double x) const {
  Location loc;
  if (x <= lo()) {
    loc.lower = 0;
    loc.tau = 0.0;
    loc.clamped = x < lo();
    return loc;
  }
  if (x >= hi()) {
    loc.lower = points_.size() - 1;
    loc.tau = 0.0;
    loc.clamped = x > hi();
    return loc;
  }
  const double offset = (x - lo()) / step_;
  size_t lower = static_cast<size_t>(offset);
  if (lower >= points_.size() - 1) lower = points_.size() - 2;  // fp edge at hi()
  loc.lower = lower;
  loc.tau = (x - points_[lower]) / (points_[lower + 1] - points_[lower]);
  loc.tau = std::clamp(loc.tau, 0.0, 1.0);
  return loc;
}

}  // namespace otfair::core
