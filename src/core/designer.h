#ifndef OTFAIR_CORE_DESIGNER_H_
#define OTFAIR_CORE_DESIGNER_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/marginals.h"
#include "core/repair_plan.h"
#include "data/dataset.h"
#include "ot/solver.h"

namespace otfair::core {

/// Options for Algorithm 1 (on-sample design of the distributional repair).
struct DesignOptions {
  /// Number of interpolated support states n_Q per (u, k) channel. The
  /// paper finds performance converges for n_Q ≳ 30 on Gaussian channels
  /// (§V-A2b) and uses 250 for Adult (§V-B).
  size_t n_q = 50;
  /// Barycentre position t along the W2 geodesic (Eq. 7) for the binary
  /// |S| = 2 case; 0.5 is the paper's fair barycentre, equidistant from
  /// both s-conditionals. Ignored when `lambdas` is set explicitly.
  double target_t = 0.5;
  /// Barycentric weights lambda_s, one per s level (normalized
  /// internally). Empty selects the default: {1 - target_t, target_t} for
  /// |S| = 2 (the paper's geodesic position) and uniform 1/|S| otherwise —
  /// the multi-group fair barycentre equidistant from every class.
  std::vector<double> lambdas;
  /// OT backend for the per-channel plans pi*_{u,s,k} (Eq. 13). Null
  /// means `ot::DefaultSolver()` — the O(n_Q) monotone map, exact for the
  /// 1-D squared-Euclidean cost used here. Any backend registered in
  /// `ot::SolverRegistry` can be injected (e.g. `ot::MakeSolver("exact")`
  /// for cross-validation, or "sinkhorn" with tuned `SolverOptions`).
  std::shared_ptr<const ot::Solver> solver;
  MarginalOptions marginal;
  /// Minimum research rows per (u, s) group; below this the design is
  /// rejected (the conditional marginal cannot be estimated).
  size_t min_group_size = 2;
  /// Worker threads for the independent (u, k) channel designs. 0 means
  /// the process-wide default (`OTFAIR_THREADS`, else hardware
  /// concurrency); 1 forces the serial path; negative is rejected.
  /// Output is bit-identical across thread counts.
  int threads = 0;
  /// Pseudo-sample budget per (u, s, k) channel for
  /// `DesignFromQuantileFunctions` (ignored by the dataset entry point).
  /// The quantile function is probed at the midpoints (i + 0.5) / n, so a
  /// larger budget tracks the streamed distribution more finely; the
  /// default saturates KDE accuracy well past the paper's n_Q range.
  size_t quantile_pseudo_samples = 512;
};

/// Algorithm 1: designs the (u, s, k)-indexed distributional repair plans
/// from the s|u-labelled research data, for any |S| >= 2 and |U| >= 1
/// (taken from the dataset's level counts).
///
/// For every u-stratum and feature k it (i) builds the uniform interpolated
/// support Q_{u,k} over the stratum's research range, (ii) KDE-interpolates
/// the |S| s-conditional marginals onto Q (Eq. 11), (iii) computes the
/// lambda-weighted N-measure quantile barycentre nu on Q (Eq. 7; for
/// |S| = 2 the paper's t-geodesic point), and (iv) solves the |S| OT
/// problems mu_s -> nu (Eq. 13). Complexity is dominated by the
/// d*|U|*|S| OT solves on n_Q states — independent of the archive size,
/// which is the point of the method.
common::Result<RepairPlanSet> DesignDistributionalRepair(const data::Dataset& research,
                                                         const DesignOptions& options = {});

/// One (u, s, k) channel's streamed distribution, summarized by a monotone
/// quantile function Q : [0, 1] -> R and the number of observations behind
/// it. This is the designer input for online redesign: a bounded-memory
/// sketch (see stats::QuantileSketch) stands in for the raw column, so no
/// raw rows are ever retained off the hot path.
struct StreamChannelQuantiles {
  std::function<double(double)> quantile;
  uint64_t count = 0;
};

/// Algorithm 1 driven by per-channel quantile functions instead of research
/// columns. `channels` is indexed `(u * s_levels + s) * dim + k` (the
/// DriftMonitor state order) and must cover every channel with at least
/// `options.min_group_size` observations. Each channel is materialized as
/// `options.quantile_pseudo_samples` deterministic pseudo-samples
/// Q((i + 0.5) / n) and then flows through the identical support-grid /
/// KDE-marginal / barycentre / OT-solve pipeline as the dataset entry
/// point — the two paths produce the same plan geometry for the same
/// underlying distribution. A non-monotone or non-finite quantile function
/// is rejected (InvalidArgument), never silently designed around.
common::Result<RepairPlanSet> DesignFromQuantileFunctions(
    size_t dim, std::vector<std::string> feature_names, size_t s_levels, size_t u_levels,
    const std::vector<StreamChannelQuantiles>& channels, const DesignOptions& options = {});

}  // namespace otfair::core

#endif  // OTFAIR_CORE_DESIGNER_H_
