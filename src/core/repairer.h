#ifndef OTFAIR_CORE_REPAIRER_H_
#define OTFAIR_CORE_REPAIRER_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "core/repair_plan.h"
#include "data/dataset.h"
#include "stats/sampling.h"

namespace otfair::core {

/// How a located archival value is pushed through the plan row.
enum class TransportMode {
  /// The paper's Algorithm 2: Bernoulli neighbour choice from tau (Eq. 14)
  /// followed by a multinomial draw from the normalized plan row (Eq. 15).
  /// Randomized mass splitting preserves the target distribution exactly.
  kStochastic,
  /// Deterministic ablation: the tau-weighted mix of the two neighbouring
  /// rows' conditional-mean targets (a barycentric-projection / Monge-style
  /// map). No sampling noise, but mass splitting is collapsed, so the
  /// repaired marginal is a smoothed version of the target.
  kConditionalMean,
};

/// Options for Algorithm 2.
struct RepairOptions {
  uint64_t seed = 0x07fa12u;
  TransportMode mode = TransportMode::kStochastic;
  /// Partial-repair strength lambda in [0, 1] (§VI future-work knob):
  /// x' = (1 - lambda) * x + lambda * T(x). 1 is the paper's full repair.
  double strength = 1.0;
  /// Worker threads for the batch RepairDataset* entry points. 0 means
  /// the process-wide default (`OTFAIR_THREADS`, else hardware
  /// concurrency); 1 forces the serial path; negative is rejected.
  /// Batch output is bit-identical across thread counts (see the row
  /// sub-stream note on RepairDataset).
  int threads = 0;
  /// Structure-of-arrays batch path: RepairDataset* gathers rows sharing
  /// a (u, s) label pair into contiguous chunks and repairs them channel
  /// by channel through RepairSpan (prefetched slot-major table lookups)
  /// instead of row by row. Output is bit-identical either way — the SoA
  /// path replays the exact per-row RNG schedule — so this knob exists
  /// only for benchmarking the layout win and as an escape hatch.
  bool soa_batch = true;
};

/// Statistics accumulated while repairing.
struct RepairStats {
  size_t values_repaired = 0;
  /// Archival values outside the research range (clamped to the grid edge);
  /// the paper's stationarity assumption expects this to be rare.
  size_t values_clamped = 0;
  /// Plan rows with (numerically) zero mass that fell back to the nearest
  /// massive row.
  size_t empty_row_fallbacks = 0;
};

/// Algorithm 2: off-sample (archival) repair driven by the plans designed
/// on the research data.
///
/// Construction precomputes, per (u, s, k) channel and per grid row, an
/// alias table over the normalized plan row, so each repaired value costs
/// O(1) — independent of both the archive size n_A and (post-setup) n_Q.
/// That is what makes "torrents of archival data" feasible (§VI).
///
/// The repairer owns a copy of the plan set and its own RNG; repairs are
/// reproducible for a fixed seed and call sequence.
class OffSampleRepairer {
 public:
  /// Validates the plan set and builds sampling tables.
  static common::Result<OffSampleRepairer> Create(RepairPlanSet plans,
                                                  const RepairOptions& options = {});

  /// Repairs one labelled value of channel (u, s, k) — the streaming
  /// entry point, consuming the repairer's own RNG stream. CHECK-fails on
  /// out-of-range u/s/k (programmer error).
  double RepairValue(int u, int s, size_t k, double x);

  /// As above but drawing from an externally supplied generator. This is
  /// the batch path's primitive: row i of RepairDataset* is repaired with
  /// `common::Rng::ForStream(options.seed, i)`, channels in k order, so a
  /// caller can replay any subset of rows, in any order, and reproduce
  /// the batch output bit-for-bit. Not safe to call concurrently on one
  /// repairer (it updates the shared stats() counters); for parallel
  /// repair use the RepairDataset* batch entry points, which shard rows
  /// internally with per-row stats slots.
  double RepairValue(int u, int s, size_t k, double x, common::Rng& rng);

  /// Const, schedule-free streaming repair against caller-owned rng and
  /// stats slots — the serving layer's primitive. Unlike the non-const
  /// RepairValue overloads it touches no repairer state, so any number of
  /// threads may call it concurrently on one shared repairer; repairing
  /// row i of a dataset with `Rng::ForStream(seed, i)` (channels in k
  /// order) reproduces the RepairDataset batch output bit-for-bit.
  double RepairValueAt(int u, int s, size_t k, double x, common::Rng& rng,
                       RepairStats& stats) const {
    return RepairValueImpl(u, s, k, x, rng, stats);
  }

  /// Reusable locate-pass scratch for RepairSpan, so span calls allocate
  /// nothing after the first. One instance per calling thread.
  struct SpanScratch {
    std::vector<uint32_t> q;    // located lower grid row per record
    std::vector<double> tau;    // neighbour interpolation weight per record
  };

  /// Structure-of-arrays batch primitive: repairs `count` values of the
  /// single channel (u, s, k), reading xs[t] and writing out[t] (the
  /// spans may alias). rngs[t] is record t's generator and is advanced
  /// exactly as the scalar RepairValueAt would advance it for channel k,
  /// so calling RepairSpan for k = 0..dim-1 over per-row
  /// `Rng::ForStream(seed, row)` generators reproduces the row-by-row
  /// batch output bit-for-bit. Const and state-free like RepairValueAt:
  /// concurrent calls on one repairer are safe with distinct out/rngs/
  /// stats/scratch. The two-pass structure (locate all records, then
  /// sample with the alias row of record t+8 prefetched) is what the
  /// batch entry points use to hide table-lookup latency.
  void RepairSpan(int u, int s, size_t k, const double* xs, size_t count,
                  common::Rng* rngs, double* out, RepairStats& stats,
                  SpanScratch& scratch) const;

  /// Soft-label streaming repair for probabilistic protected attributes
  /// (§VI / ref. [39]): draws s ~ Bernoulli(pr_s1) and repairs under the
  /// drawn class, so the marginal of the output is the posterior-weighted
  /// mixture of the two class repairs. Binary |S| = 2 plans only.
  double RepairValueSoft(int u, double pr_s1, size_t k, double x);

  /// Repairs every feature of every row, using the dataset's own (u, s)
  /// labels. Returns a repaired copy; the input is untouched.
  ///
  /// Batch determinism: row i draws from the decorrelated sub-stream
  /// `Rng::ForStream(options.seed, i)` rather than one shared sequential
  /// stream, so the output is a pure function of (plans, options.seed,
  /// dataset) — independent of row processing order and therefore
  /// bit-identical across `options.threads` settings.
  common::Result<data::Dataset> RepairDataset(const data::Dataset& dataset);

  /// As RepairDataset but with externally supplied s-labels (e.g. the
  /// s_hat|u estimates of core::LabelEstimator when archives are
  /// unlabelled).
  common::Result<data::Dataset> RepairDatasetWithLabels(const data::Dataset& dataset,
                                                        const std::vector<int>& s_labels);

  /// As RepairDataset but with per-row posteriors Pr[s = 1 | row] instead
  /// of hard labels.
  common::Result<data::Dataset> RepairDatasetSoft(const data::Dataset& dataset,
                                                  const std::vector<double>& pr_s1);

  const RepairStats& stats() const { return stats_; }
  const RepairPlanSet& plans() const { return plans_; }

 private:
  OffSampleRepairer(RepairPlanSet plans, const RepairOptions& options);

  /// Per-(u, s, k) sampling structures: a slot-major alias arena (one
  /// packed row per grid row, covering only that row's CSR support — the
  /// whole channel builds in O(nnz)), plus a conditional mean and the
  /// nearest massive row for empty rows. Arena slots carry the grid
  /// column payloads directly, so a draw needs no detour through the
  /// plan's column indices. The arena replaced a
  /// vector<optional<AliasTable>> (three heap vectors per grid row)
  /// whose pointer chasing cost ~22% of repair throughput at K = 4.
  struct ChannelTables {
    stats::AliasArena alias;               // slot-major, per grid row
    std::vector<double> conditional_mean;  // per grid row
    std::vector<uint32_t> fallback_row;    // per grid row
  };

  common::Status BuildTables();
  const ChannelTables& TablesFor(int u, int s, size_t k) const;

  /// The transport itself; pure given (rng, stats) slots, so batch rows
  /// can run concurrently with per-row rng/stats.
  double RepairValueImpl(int u, int s, size_t k, double x, common::Rng& rng,
                         RepairStats& stats) const;

  RepairPlanSet plans_;
  RepairOptions options_;
  common::Rng rng_;
  RepairStats stats_;
  std::vector<ChannelTables> tables_;  // index: (u * |S| + s) * dim + k
};

}  // namespace otfair::core

#endif  // OTFAIR_CORE_REPAIRER_H_
