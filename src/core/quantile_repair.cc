#include "core/quantile_repair.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/status.h"

namespace otfair::core {

using common::Result;
using common::Status;

namespace {

/// Builds the midpoint-interpolated CDF of a pmf on grid points: the mass of
/// state q is centred at the grid point, so F(zeta_q) = cum_{q-1} + w_q / 2.
/// Knots with (numerically) zero incremental mass are merged so the table is
/// strictly increasing and invertible.
void BuildCdfTable(const ot::DiscreteMeasure& marginal, std::vector<double>* knots,
                   std::vector<double>* cdf) {
  knots->clear();
  cdf->clear();
  double cum = 0.0;
  for (size_t q = 0; q < marginal.size(); ++q) {
    const double w = marginal.weight_at(q);
    const double value = cum + 0.5 * w;
    cum += w;
    if (!cdf->empty() && value <= cdf->back() + 1e-15) continue;  // merge flats
    knots->push_back(marginal.support_at(q));
    cdf->push_back(value);
  }
  OTFAIR_CHECK(!knots->empty());
}

}  // namespace

double QuantileMapRepairer::CdfTable::Evaluate(double x) const {
  if (x <= knots.front()) return cdf.front();
  if (x >= knots.back()) return cdf.back();
  const auto it = std::upper_bound(knots.begin(), knots.end(), x);
  const size_t hi = static_cast<size_t>(it - knots.begin());
  const size_t lo = hi - 1;
  const double frac = (x - knots[lo]) / (knots[hi] - knots[lo]);
  return cdf[lo] + frac * (cdf[hi] - cdf[lo]);
}

double QuantileMapRepairer::CdfTable::Quantile(double q) const {
  if (q <= cdf.front()) return knots.front();
  if (q >= cdf.back()) return knots.back();
  const auto it = std::upper_bound(cdf.begin(), cdf.end(), q);
  const size_t hi = static_cast<size_t>(it - cdf.begin());
  const size_t lo = hi - 1;
  const double frac = (q - cdf[lo]) / (cdf[hi] - cdf[lo]);
  return knots[lo] + frac * (knots[hi] - knots[lo]);
}

Result<QuantileMapRepairer> QuantileMapRepairer::Create(RepairPlanSet plans, double strength) {
  if (!(strength >= 0.0 && strength <= 1.0))
    return Status::InvalidArgument("strength must lie in [0, 1]");
  Status valid = plans.Validate(1e-5);
  if (!valid.ok()) return valid;
  QuantileMapRepairer repairer(std::move(plans), strength);
  repairer.BuildTables();
  return repairer;
}

void QuantileMapRepairer::BuildTables() {
  const size_t dim = plans_.dim();
  const size_t s_levels = plans_.s_levels();
  const size_t u_levels = plans_.u_levels();
  source_.resize(u_levels * s_levels * dim);
  target_.resize(u_levels * dim);
  for (size_t u = 0; u < u_levels; ++u) {
    for (size_t k = 0; k < dim; ++k) {
      const ChannelPlan& channel = plans_.At(static_cast<int>(u), k);
      for (size_t s = 0; s < s_levels; ++s) {
        CdfTable& table = source_[(u * s_levels + s) * dim + k];
        BuildCdfTable(channel.marginal[s], &table.knots, &table.cdf);
      }
      CdfTable& target = target_[u * dim + k];
      BuildCdfTable(channel.barycenter, &target.knots, &target.cdf);
    }
  }
}

const QuantileMapRepairer::CdfTable& QuantileMapRepairer::SourceCdf(int u, int s,
                                                                    size_t k) const {
  OTFAIR_CHECK(u >= 0 && static_cast<size_t>(u) < plans_.u_levels());
  OTFAIR_CHECK(s >= 0 && static_cast<size_t>(s) < plans_.s_levels());
  OTFAIR_CHECK_LT(k, plans_.dim());
  return source_[(static_cast<size_t>(u) * plans_.s_levels() + static_cast<size_t>(s)) *
                     plans_.dim() +
                 k];
}

const QuantileMapRepairer::CdfTable& QuantileMapRepairer::TargetCdf(int u, size_t k) const {
  OTFAIR_CHECK(u >= 0 && static_cast<size_t>(u) < plans_.u_levels());
  OTFAIR_CHECK_LT(k, plans_.dim());
  return target_[static_cast<size_t>(u) * plans_.dim() + k];
}

double QuantileMapRepairer::RepairValue(int u, int s, size_t k, double x) const {
  const double q = SourceCdf(u, s, k).Evaluate(x);
  const double transported = TargetCdf(u, k).Quantile(q);
  return (1.0 - strength_) * x + strength_ * transported;
}

double QuantileMapRepairer::RepairValueSoft(int u, double pr_s1, size_t k, double x) const {
  OTFAIR_CHECK(pr_s1 >= 0.0 && pr_s1 <= 1.0);
  OTFAIR_CHECK_EQ(plans_.s_levels(), 2u);
  const double repaired0 = RepairValue(u, 0, k, x);
  const double repaired1 = RepairValue(u, 1, k, x);
  return (1.0 - pr_s1) * repaired0 + pr_s1 * repaired1;
}

Result<data::Dataset> QuantileMapRepairer::RepairDataset(const data::Dataset& dataset) const {
  return RepairDatasetWithLabels(dataset, dataset.s_labels());
}

Result<data::Dataset> QuantileMapRepairer::RepairDatasetWithLabels(
    const data::Dataset& dataset, const std::vector<int>& s_labels) const {
  if (dataset.dim() != plans_.dim())
    return Status::InvalidArgument("dataset dimensionality does not match the plan set");
  if (s_labels.size() != dataset.size())
    return Status::InvalidArgument("s_labels length must match dataset size");
  for (int s : s_labels) {
    if (s < 0 || static_cast<size_t>(s) >= plans_.s_levels())
      return Status::InvalidArgument("s_labels must lie in [0, " +
                                     std::to_string(plans_.s_levels()) + ")");
  }
  for (int u : dataset.u_labels()) {
    if (u < 0 || static_cast<size_t>(u) >= plans_.u_levels())
      return Status::InvalidArgument("dataset u labels exceed the plan's u levels");
  }
  data::Dataset repaired = dataset.Clone();
  for (size_t i = 0; i < dataset.size(); ++i) {
    for (size_t k = 0; k < dataset.dim(); ++k) {
      repaired.set_feature(
          i, k, RepairValue(dataset.u(i), s_labels[i], k, dataset.feature(i, k)));
    }
  }
  return repaired;
}

Result<data::Dataset> QuantileMapRepairer::RepairDatasetSoft(
    const data::Dataset& dataset, const std::vector<double>& pr_s1) const {
  if (dataset.dim() != plans_.dim())
    return Status::InvalidArgument("dataset dimensionality does not match the plan set");
  if (pr_s1.size() != dataset.size())
    return Status::InvalidArgument("pr_s1 length must match dataset size");
  if (plans_.s_levels() != 2)
    return Status::InvalidArgument(
        "soft (probabilistic) repair is defined for binary s only");
  for (double p : pr_s1) {
    if (!(p >= 0.0 && p <= 1.0))
      return Status::InvalidArgument("posteriors must lie in [0, 1]");
  }
  data::Dataset repaired = dataset.Clone();
  for (size_t i = 0; i < dataset.size(); ++i) {
    for (size_t k = 0; k < dataset.dim(); ++k) {
      repaired.set_feature(
          i, k, RepairValueSoft(dataset.u(i), pr_s1[i], k, dataset.feature(i, k)));
    }
  }
  return repaired;
}

}  // namespace otfair::core
