#ifndef OTFAIR_CORE_QUANTILE_REPAIR_H_
#define OTFAIR_CORE_QUANTILE_REPAIR_H_

#include <vector>

#include "common/result.h"
#include "core/repair_plan.h"
#include "data/dataset.h"

namespace otfair::core {

/// Monge-style quantile-map repair — the continuum limit the paper
/// anticipates in §VI: as n_Q → ∞ the Kantorovich plans converge to Monge
/// *maps* (Brenier), mass splitting disappears, and feature-similar records
/// are repaired similarly (individual fairness).
///
/// This repairer realizes that limit directly: per (u, s, k) channel it
/// composes the interpolated source CDF with the barycentre's quantile
/// function,
///
///     T_{u,s,k}(x) = F_nu^{-1}( F_{mu_s}(x) ),
///
/// where both distribution functions are the piecewise-linear (midpoint)
/// interpolations of the design-time pmfs on Q. Properties (tested in
/// tests/core/quantile_repair_test.cc):
///
///  * deterministic — no RNG; two equal inputs repair identically;
///  * monotone non-decreasing in x within each channel — order statistics
///    (rankings) of a group are preserved, the individual-fairness property
///    the stochastic Algorithm 2 cannot give;
///  * continuous in x — no grid snapping; repaired values interpolate
///    between grid states;
///  * push-forward correct — repairing mu_s-distributed inputs yields
///    (approximately) barycentre-distributed outputs, so conditional
///    independence is still quenched.
///
/// It consumes the same RepairPlanSet artifact as OffSampleRepairer, so the
/// two application modes are interchangeable at deployment time.
class QuantileMapRepairer {
 public:
  /// Validates the plan set and precomputes the per-channel CDF tables.
  /// `strength` is the partial-repair knob: x' = (1-strength) x +
  /// strength T(x).
  static common::Result<QuantileMapRepairer> Create(RepairPlanSet plans,
                                                    double strength = 1.0);

  /// Repairs one value of channel (u, s, k); O(log n_Q) per call.
  double RepairValue(int u, int s, size_t k, double x) const;

  /// Soft-label repair for archives with probabilistic protected
  /// attributes (paper §VI, refs [37]/[39]): the posterior-weighted mix of
  /// the two class maps, `(1 - p1) T_{u,0,k}(x) + p1 T_{u,1,k}(x)`.
  /// Binary |S| = 2 plans only.
  double RepairValueSoft(int u, double pr_s1, size_t k, double x) const;

  /// Repairs a whole dataset using its own labels.
  common::Result<data::Dataset> RepairDataset(const data::Dataset& dataset) const;

  /// Repairs with externally supplied hard labels.
  common::Result<data::Dataset> RepairDatasetWithLabels(
      const data::Dataset& dataset, const std::vector<int>& s_labels) const;

  /// Repairs with per-row posteriors Pr[s = 1 | row].
  common::Result<data::Dataset> RepairDatasetSoft(
      const data::Dataset& dataset, const std::vector<double>& pr_s1) const;

  const RepairPlanSet& plans() const { return plans_; }

 private:
  /// Piecewise-linear distribution function of one channel marginal:
  /// knots_ are the grid points, cdf_ the midpoint-interpolated cumulative
  /// masses (strictly increasing after deduplication).
  struct CdfTable {
    std::vector<double> knots;
    std::vector<double> cdf;

    double Evaluate(double x) const;   // F(x) in [0, 1]
    double Quantile(double q) const;   // F^{-1}(q)
  };

  QuantileMapRepairer(RepairPlanSet plans, double strength)
      : plans_(std::move(plans)), strength_(strength) {}

  void BuildTables();
  const CdfTable& SourceCdf(int u, int s, size_t k) const;
  const CdfTable& TargetCdf(int u, size_t k) const;

  RepairPlanSet plans_;
  double strength_ = 1.0;
  std::vector<CdfTable> source_;  // index: (u * |S| + s) * dim + k
  std::vector<CdfTable> target_;  // index: u * dim + k
};

}  // namespace otfair::core

#endif  // OTFAIR_CORE_QUANTILE_REPAIR_H_
