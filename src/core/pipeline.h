#ifndef OTFAIR_CORE_PIPELINE_H_
#define OTFAIR_CORE_PIPELINE_H_

#include <optional>

#include "common/result.h"
#include "core/designer.h"
#include "core/repairer.h"
#include "data/dataset.h"

namespace otfair::core {

/// End-to-end repair pipeline options.
///
/// The OT backend is injected via `design.solver` (an `ot::Solver` from
/// the registry); the design stage — the only stage of this pipeline
/// that solves transport problems — uses it for every channel plan, so
/// registering a new backend makes it available here, to the CLI and to
/// the benches at once. (The geometric baseline and the joint repairer
/// take their own solver in their respective option structs.)
struct PipelineOptions {
  DesignOptions design;
  RepairOptions repair;
  /// Convenience thread count applied to both stages: when positive it
  /// overrides any `design.threads`/`repair.threads` left at 0. 0 defers
  /// to the per-stage options; negative is rejected.
  int threads = 0;
  /// When true, archival s-labels are re-estimated from the research data
  /// (core::LabelEstimator) instead of trusting the archive's labels —
  /// paper §IV requirement 5 / §V-B operating mode.
  bool estimate_archive_labels = false;
};

/// Pipeline output: the designed plans plus repaired copies of both data
/// sets (the research repair is the paper's "on-sample repair", the archive
/// repair the "off-sample repair").
struct PipelineResult {
  RepairPlanSet plans;
  data::Dataset repaired_research;
  data::Dataset repaired_archive;
  RepairStats stats;
  /// Fraction of archival s_hat labels that match the archive's own labels
  /// (only set when estimate_archive_labels is true and the archive carries
  /// labels to compare against).
  std::optional<double> label_estimate_accuracy;
};

/// Runs Algorithm 1 on `research`, then Algorithm 2 on both sets.
common::Result<PipelineResult> RunRepairPipeline(const data::Dataset& research,
                                                 const data::Dataset& archive,
                                                 const PipelineOptions& options = {});

}  // namespace otfair::core

#endif  // OTFAIR_CORE_PIPELINE_H_
