#include "core/pipeline.h"

#include <utility>

#include "common/status.h"
#include "core/label_estimator.h"

namespace otfair::core {

using common::Result;
using common::Status;

Result<PipelineResult> RunRepairPipeline(const data::Dataset& research,
                                         const data::Dataset& archive,
                                         const PipelineOptions& options) {
  if (research.dim() != archive.dim())
    return Status::InvalidArgument("research/archive dimensionality mismatch");
  if (options.threads < 0)
    return Status::InvalidArgument("threads must be >= 1 (or 0 for the process default)");

  DesignOptions design_options = options.design;
  RepairOptions repair_options = options.repair;
  if (options.threads > 0) {
    if (design_options.threads == 0) design_options.threads = options.threads;
    if (repair_options.threads == 0) repair_options.threads = options.threads;
  }

  auto plans = DesignDistributionalRepair(research, design_options);
  if (!plans.ok()) return plans.status();

  auto repairer = OffSampleRepairer::Create(*plans, repair_options);
  if (!repairer.ok()) return repairer.status();

  PipelineResult result;
  result.plans = std::move(*plans);

  auto repaired_research = repairer->RepairDataset(research);
  if (!repaired_research.ok()) return repaired_research.status();
  result.repaired_research = std::move(*repaired_research);

  if (options.estimate_archive_labels) {
    auto estimator = LabelEstimator::Fit(research);
    if (!estimator.ok()) return estimator.status();
    auto s_hat = estimator->EstimateS(archive);
    if (!s_hat.ok()) return s_hat.status();
    size_t agree = 0;
    for (size_t i = 0; i < archive.size(); ++i) {
      if ((*s_hat)[i] == archive.s(i)) ++agree;
    }
    result.label_estimate_accuracy =
        static_cast<double>(agree) / static_cast<double>(archive.size());
    auto repaired_archive = repairer->RepairDatasetWithLabels(archive, *s_hat);
    if (!repaired_archive.ok()) return repaired_archive.status();
    result.repaired_archive = std::move(*repaired_archive);
  } else {
    auto repaired_archive = repairer->RepairDataset(archive);
    if (!repaired_archive.ok()) return repaired_archive.status();
    result.repaired_archive = std::move(*repaired_archive);
  }

  result.stats = repairer->stats();
  return result;
}

}  // namespace otfair::core
