#include "core/label_estimator.h"

#include "common/check.h"
#include "common/matrix.h"
#include "common/status.h"

namespace otfair::core {

using common::Matrix;
using common::Result;
using common::Status;

Result<LabelEstimator> LabelEstimator::Fit(const data::Dataset& research) {
  if (research.empty()) return Status::InvalidArgument("empty research dataset");
  LabelEstimator estimator;
  estimator.s_levels_ = research.s_levels();
  estimator.models_.reserve(research.u_levels());
  for (size_t u = 0; u < research.u_levels(); ++u) {
    const std::vector<size_t> indices = research.UIndices(static_cast<int>(u));
    if (indices.empty())
      return Status::FailedPrecondition("research data has no rows for one u stratum");
    Matrix features(indices.size(), research.dim());
    std::vector<size_t> labels(indices.size());
    for (size_t r = 0; r < indices.size(); ++r) {
      for (size_t k = 0; k < research.dim(); ++k)
        features(r, k) = research.feature(indices[r], k);
      labels[r] = static_cast<size_t>(research.s(indices[r]));
    }
    auto model = stats::GaussianMixture::FitSupervised(features, labels, research.s_levels());
    if (!model.ok())
      return Status(model.status().code(),
                    "u=" + std::to_string(u) + " stratum: " + model.status().message());
    estimator.models_.push_back(std::move(*model));
  }
  return estimator;
}

int LabelEstimator::EstimateOne(int u, const std::vector<double>& x) const {
  OTFAIR_CHECK(u >= 0 && static_cast<size_t>(u) < models_.size());
  return static_cast<int>(models_[static_cast<size_t>(u)].Classify(x));
}

double LabelEstimator::PosteriorS1(int u, const std::vector<double>& x) const {
  OTFAIR_CHECK(u >= 0 && static_cast<size_t>(u) < models_.size());
  OTFAIR_CHECK_EQ(s_levels_, 2u);
  return models_[static_cast<size_t>(u)].Responsibilities(x)[1];
}

std::vector<double> LabelEstimator::PosteriorsFor(int u, const std::vector<double>& x) const {
  OTFAIR_CHECK(u >= 0 && static_cast<size_t>(u) < models_.size());
  return models_[static_cast<size_t>(u)].Responsibilities(x);
}

Result<std::vector<int>> LabelEstimator::EstimateS(const data::Dataset& dataset) const {
  if (models_.empty()) return Status::FailedPrecondition("estimator not fitted");
  if (dataset.dim() != models_[0].dim())
    return Status::InvalidArgument("dataset dimensionality does not match the fitted models");
  for (int u : dataset.u_labels()) {
    if (u < 0 || static_cast<size_t>(u) >= models_.size())
      return Status::InvalidArgument("dataset u labels exceed the fitted u strata");
  }
  std::vector<int> out;
  out.reserve(dataset.size());
  for (size_t i = 0; i < dataset.size(); ++i)
    out.push_back(EstimateOne(dataset.u(i), dataset.Row(i)));
  return out;
}

Result<std::vector<double>> LabelEstimator::PosteriorsS1(const data::Dataset& dataset) const {
  if (models_.empty()) return Status::FailedPrecondition("estimator not fitted");
  if (s_levels_ != 2)
    return Status::FailedPrecondition("Pr[s = 1] posteriors are defined for binary s only");
  if (dataset.dim() != models_[0].dim())
    return Status::InvalidArgument("dataset dimensionality does not match the fitted models");
  for (int u : dataset.u_labels()) {
    if (u < 0 || static_cast<size_t>(u) >= models_.size())
      return Status::InvalidArgument("dataset u labels exceed the fitted u strata");
  }
  std::vector<double> out;
  out.reserve(dataset.size());
  for (size_t i = 0; i < dataset.size(); ++i)
    out.push_back(PosteriorS1(dataset.u(i), dataset.Row(i)));
  return out;
}

Result<double> LabelEstimator::AccuracyOn(const data::Dataset& labelled) const {
  auto estimates = EstimateS(labelled);
  if (!estimates.ok()) return estimates.status();
  size_t correct = 0;
  for (size_t i = 0; i < labelled.size(); ++i) {
    if ((*estimates)[i] == labelled.s(i)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(labelled.size());
}

}  // namespace otfair::core
