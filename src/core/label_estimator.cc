#include "core/label_estimator.h"

#include "common/check.h"
#include "common/matrix.h"
#include "common/status.h"

namespace otfair::core {

using common::Matrix;
using common::Result;
using common::Status;

Result<LabelEstimator> LabelEstimator::Fit(const data::Dataset& research) {
  if (research.empty()) return Status::InvalidArgument("empty research dataset");
  LabelEstimator estimator;
  for (int u = 0; u <= 1; ++u) {
    const std::vector<size_t> indices = research.UIndices(u);
    if (indices.empty())
      return Status::FailedPrecondition("research data has no rows for one u stratum");
    Matrix features(indices.size(), research.dim());
    std::vector<size_t> labels(indices.size());
    for (size_t r = 0; r < indices.size(); ++r) {
      for (size_t k = 0; k < research.dim(); ++k)
        features(r, k) = research.feature(indices[r], k);
      labels[r] = static_cast<size_t>(research.s(indices[r]));
    }
    auto model = stats::GaussianMixture::FitSupervised(features, labels, 2);
    if (!model.ok())
      return Status(model.status().code(),
                    "u=" + std::to_string(u) + " stratum: " + model.status().message());
    (u == 0 ? estimator.model_u0_ : estimator.model_u1_) = std::move(*model);
  }
  return estimator;
}

int LabelEstimator::EstimateOne(int u, const std::vector<double>& x) const {
  OTFAIR_CHECK(u == 0 || u == 1);
  const stats::GaussianMixture& model = (u == 0) ? *model_u0_ : *model_u1_;
  return static_cast<int>(model.Classify(x));
}

double LabelEstimator::PosteriorS1(int u, const std::vector<double>& x) const {
  OTFAIR_CHECK(u == 0 || u == 1);
  const stats::GaussianMixture& model = (u == 0) ? *model_u0_ : *model_u1_;
  return model.Responsibilities(x)[1];
}

Result<std::vector<int>> LabelEstimator::EstimateS(const data::Dataset& dataset) const {
  if (!model_u0_.has_value() || !model_u1_.has_value())
    return Status::FailedPrecondition("estimator not fitted");
  if (dataset.dim() != model_u0_->dim())
    return Status::InvalidArgument("dataset dimensionality does not match the fitted models");
  std::vector<int> out;
  out.reserve(dataset.size());
  for (size_t i = 0; i < dataset.size(); ++i)
    out.push_back(EstimateOne(dataset.u(i), dataset.Row(i)));
  return out;
}

Result<std::vector<double>> LabelEstimator::PosteriorsS1(const data::Dataset& dataset) const {
  if (!model_u0_.has_value() || !model_u1_.has_value())
    return Status::FailedPrecondition("estimator not fitted");
  if (dataset.dim() != model_u0_->dim())
    return Status::InvalidArgument("dataset dimensionality does not match the fitted models");
  std::vector<double> out;
  out.reserve(dataset.size());
  for (size_t i = 0; i < dataset.size(); ++i)
    out.push_back(PosteriorS1(dataset.u(i), dataset.Row(i)));
  return out;
}

Result<double> LabelEstimator::AccuracyOn(const data::Dataset& labelled) const {
  auto estimates = EstimateS(labelled);
  if (!estimates.ok()) return estimates.status();
  size_t correct = 0;
  for (size_t i = 0; i < labelled.size(); ++i) {
    if ((*estimates)[i] == labelled.s(i)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(labelled.size());
}

}  // namespace otfair::core
