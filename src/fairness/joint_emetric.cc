#include "fairness/joint_emetric.h"

#include <algorithm>
#include <vector>

#include "common/matrix.h"
#include "common/status.h"
#include "stats/divergence.h"
#include "stats/kde2d.h"

namespace otfair::fairness {

using common::Matrix;
using common::Result;
using common::Status;

namespace {

std::vector<double> UniformGrid(double lo, double hi, size_t count) {
  std::vector<double> grid(count);
  if (!(hi > lo)) {
    lo -= 0.5;
    hi += 0.5;
  }
  for (size_t i = 0; i < count; ++i)
    grid[i] = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(count - 1);
  return grid;
}

std::vector<double> Flatten(const Matrix& m) {
  return std::vector<double>(m.data(), m.data() + m.size());
}

}  // namespace

Result<double> JointFeaturePairE(const data::Dataset& dataset, size_t k1, size_t k2,
                                 const JointEMetricOptions& options) {
  if (dataset.empty()) return Status::InvalidArgument("empty dataset");
  if (k1 >= dataset.dim() || k2 >= dataset.dim())
    return Status::InvalidArgument("feature index out of range");
  if (k1 == k2) return Status::InvalidArgument("feature pair must be distinct");
  if (options.grid_size < 2) return Status::InvalidArgument("grid_size must be >= 2");

  const double n_total = static_cast<double>(dataset.size());
  double usable_weight = 0.0;
  double weighted_e = 0.0;

  for (int u = 0; u <= 1; ++u) {
    const std::vector<size_t> idx0 = dataset.GroupIndices({u, 0});
    const std::vector<size_t> idx1 = dataset.GroupIndices({u, 1});
    const double pr_u = static_cast<double>(idx0.size() + idx1.size()) / n_total;
    if (idx0.size() < options.min_group_size || idx1.size() < options.min_group_size)
      continue;

    const std::vector<double> x0 = dataset.FeatureColumn(k1, idx0);
    const std::vector<double> y0 = dataset.FeatureColumn(k2, idx0);
    const std::vector<double> x1 = dataset.FeatureColumn(k1, idx1);
    const std::vector<double> y1 = dataset.FeatureColumn(k2, idx1);

    const double lo_x = std::min(*std::min_element(x0.begin(), x0.end()),
                                 *std::min_element(x1.begin(), x1.end()));
    const double hi_x = std::max(*std::max_element(x0.begin(), x0.end()),
                                 *std::max_element(x1.begin(), x1.end()));
    const double lo_y = std::min(*std::min_element(y0.begin(), y0.end()),
                                 *std::min_element(y1.begin(), y1.end()));
    const double hi_y = std::max(*std::max_element(y0.begin(), y0.end()),
                                 *std::max_element(y1.begin(), y1.end()));
    const std::vector<double> grid_x = UniformGrid(lo_x, hi_x, options.grid_size);
    const std::vector<double> grid_y = UniformGrid(lo_y, hi_y, options.grid_size);

    auto kde0 = stats::GaussianKde2d::FitSilverman(x0, y0);
    if (!kde0.ok()) return kde0.status();
    auto kde1 = stats::GaussianKde2d::FitSilverman(x1, y1);
    if (!kde1.ok()) return kde1.status();
    auto pmf0 = kde0->PmfOnGrid(grid_x, grid_y);
    if (!pmf0.ok()) return pmf0.status();
    auto pmf1 = kde1->PmfOnGrid(grid_x, grid_y);
    if (!pmf1.ok()) return pmf1.status();

    auto e_u = stats::SymmetrizedKl(Flatten(*pmf0), Flatten(*pmf1), options.kl_floor);
    if (!e_u.ok()) return e_u.status();
    usable_weight += pr_u;
    weighted_e += pr_u * (*e_u);
  }

  if (usable_weight <= 0.0)
    return Status::FailedPrecondition("no u-stratum has both s-groups populated");
  return weighted_e / usable_weight;
}

}  // namespace otfair::fairness
