#include "fairness/joint_emetric.h"

#include <algorithm>
#include <vector>

#include "common/matrix.h"
#include "common/status.h"
#include "stats/divergence.h"
#include "stats/kde2d.h"

namespace otfair::fairness {

using common::Matrix;
using common::Result;
using common::Status;

namespace {

std::vector<double> UniformGrid(double lo, double hi, size_t count) {
  std::vector<double> grid(count);
  if (!(hi > lo)) {
    lo -= 0.5;
    hi += 0.5;
  }
  for (size_t i = 0; i < count; ++i)
    grid[i] = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(count - 1);
  return grid;
}

std::vector<double> Flatten(const Matrix& m) {
  return std::vector<double>(m.data(), m.data() + m.size());
}

}  // namespace

Result<double> JointFeaturePairE(const data::Dataset& dataset, size_t k1, size_t k2,
                                 const JointEMetricOptions& options) {
  if (dataset.empty()) return Status::InvalidArgument("empty dataset");
  if (k1 >= dataset.dim() || k2 >= dataset.dim())
    return Status::InvalidArgument("feature index out of range");
  if (k1 == k2) return Status::InvalidArgument("feature pair must be distinct");
  if (options.grid_size < 2) return Status::InvalidArgument("grid_size must be >= 2");

  const double n_total = static_cast<double>(dataset.size());
  double usable_weight = 0.0;
  double weighted_e = 0.0;

  const size_t s_levels = dataset.s_levels();
  // All |U| * |S| group index sets in one dataset pass.
  const std::vector<std::vector<size_t>> groups = dataset.GroupIndexBuckets();
  for (size_t u = 0; u < dataset.u_levels(); ++u) {
    // Gather every estimable s-group of the stratum (small classes are
    // skipped individually); as in the 1-D FeatureEMetric, the
    // multi-group E is the max over class pairs of the pairwise (here:
    // joint 2-D) symmetrized KL. Binary data takes the identical
    // single-pair computation.
    std::vector<std::vector<double>> xs;
    std::vector<std::vector<double>> ys;
    double pr_u_count = 0.0;
    for (size_t s = 0; s < s_levels; ++s) {
      const std::vector<size_t>& idx = groups[u * s_levels + s];
      pr_u_count += static_cast<double>(idx.size());
      if (idx.size() < options.min_group_size) continue;
      xs.push_back(dataset.FeatureColumn(k1, idx));
      ys.push_back(dataset.FeatureColumn(k2, idx));
    }
    const double pr_u = pr_u_count / n_total;
    if (xs.size() < 2) continue;

    double lo_x = xs[0][0];
    double hi_x = xs[0][0];
    double lo_y = ys[0][0];
    double hi_y = ys[0][0];
    for (size_t g = 0; g < xs.size(); ++g) {
      lo_x = std::min(lo_x, *std::min_element(xs[g].begin(), xs[g].end()));
      hi_x = std::max(hi_x, *std::max_element(xs[g].begin(), xs[g].end()));
      lo_y = std::min(lo_y, *std::min_element(ys[g].begin(), ys[g].end()));
      hi_y = std::max(hi_y, *std::max_element(ys[g].begin(), ys[g].end()));
    }
    const std::vector<double> grid_x = UniformGrid(lo_x, hi_x, options.grid_size);
    const std::vector<double> grid_y = UniformGrid(lo_y, hi_y, options.grid_size);

    std::vector<std::vector<double>> pmfs;
    pmfs.reserve(xs.size());
    for (size_t g = 0; g < xs.size(); ++g) {
      auto kde = stats::GaussianKde2d::FitSilverman(xs[g], ys[g]);
      if (!kde.ok()) return kde.status();
      auto pmf = kde->PmfOnGrid(grid_x, grid_y);
      if (!pmf.ok()) return pmf.status();
      pmfs.push_back(Flatten(*pmf));
    }

    double e_u = 0.0;
    for (size_t a = 0; a < pmfs.size(); ++a) {
      for (size_t b = a + 1; b < pmfs.size(); ++b) {
        auto pair_e = stats::SymmetrizedKl(pmfs[a], pmfs[b], options.kl_floor);
        if (!pair_e.ok()) return pair_e.status();
        e_u = std::max(e_u, *pair_e);
      }
    }
    usable_weight += pr_u;
    weighted_e += pr_u * e_u;
  }

  if (usable_weight <= 0.0)
    return Status::FailedPrecondition("no u-stratum has enough populated s-groups");
  return weighted_e / usable_weight;
}

}  // namespace otfair::fairness
