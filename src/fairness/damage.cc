#include "fairness/damage.h"

#include <cmath>

#include "common/status.h"

namespace otfair::fairness {

using common::Result;
using common::Status;

Result<DamageReport> ComputeDamage(const data::Dataset& before, const data::Dataset& after) {
  if (before.size() != after.size() || before.dim() != after.dim())
    return Status::InvalidArgument("datasets must be row-aligned with equal dimension");
  if (before.empty()) return Status::InvalidArgument("empty dataset");

  const size_t n = before.size();
  const size_t d = before.dim();
  DamageReport report;
  report.mean_abs_displacement.assign(d, 0.0);
  report.rms_displacement.assign(d, 0.0);

  double l2_total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double row_sq = 0.0;
    for (size_t k = 0; k < d; ++k) {
      const double delta = after.feature(i, k) - before.feature(i, k);
      report.mean_abs_displacement[k] += std::fabs(delta);
      report.rms_displacement[k] += delta * delta;
      row_sq += delta * delta;
    }
    l2_total += std::sqrt(row_sq);
  }
  const double inv_n = 1.0 / static_cast<double>(n);
  for (size_t k = 0; k < d; ++k) {
    report.mean_abs_displacement[k] *= inv_n;
    report.rms_displacement[k] = std::sqrt(report.rms_displacement[k] * inv_n);
  }
  report.mean_l2_displacement = l2_total * inv_n;
  return report;
}

}  // namespace otfair::fairness
