#ifndef OTFAIR_FAIRNESS_REPORT_H_
#define OTFAIR_FAIRNESS_REPORT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"
#include "fairness/emetric.h"

namespace otfair::fairness {

/// One dataset's fairness summary: per-feature E_k plus group composition.
/// Rendered as the human-readable block the example binaries print.
struct FairnessReport {
  std::vector<std::string> feature_names;
  std::vector<double> e_per_feature;
  double e_aggregate = 0.0;
  double pr_u1 = 0.0;
  double pr_s1_given_u0 = 0.0;
  double pr_s1_given_u1 = 0.0;
  size_t rows = 0;

  /// Multi-line fixed-width rendering.
  std::string ToString() const;
};

/// Computes the full report for a dataset.
common::Result<FairnessReport> MakeFairnessReport(const data::Dataset& dataset,
                                                  const EMetricOptions& options = {});

}  // namespace otfair::fairness

#endif  // OTFAIR_FAIRNESS_REPORT_H_
