#ifndef OTFAIR_FAIRNESS_REPORT_H_
#define OTFAIR_FAIRNESS_REPORT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"
#include "fairness/emetric.h"

namespace otfair::fairness {

/// One dataset's fairness summary: per-feature E_k plus group composition.
/// Rendered as the human-readable block the example binaries print.
struct FairnessReport {
  std::vector<std::string> feature_names;
  std::vector<double> e_per_feature;
  double e_aggregate = 0.0;
  /// Binary-era composition summary (still filled for any level counts:
  /// these are the level-1 shares).
  double pr_u1 = 0.0;
  double pr_s1_given_u0 = 0.0;
  double pr_s1_given_u1 = 0.0;
  size_t rows = 0;
  /// Attribute cardinalities and the full composition table
  /// pr_s_given_u[u][s] = Pr[s | u] for the multi-group rendering.
  size_t s_levels = 2;
  size_t u_levels = 2;
  std::vector<double> pr_u;                      // per u level
  std::vector<std::vector<double>> pr_s_given_u; // [u][s]

  /// Multi-line fixed-width rendering. Binary datasets render the
  /// original one-line composition header; multi-group datasets add a
  /// per-stratum composition table.
  std::string ToString() const;
};

/// Computes the full report for a dataset.
common::Result<FairnessReport> MakeFairnessReport(const data::Dataset& dataset,
                                                  const EMetricOptions& options = {});

}  // namespace otfair::fairness

#endif  // OTFAIR_FAIRNESS_REPORT_H_
