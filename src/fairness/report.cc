#include "fairness/report.h"

#include <sstream>

#include "common/string_util.h"

namespace otfair::fairness {

using common::Result;

std::string FairnessReport::ToString() const {
  std::ostringstream os;
  if (s_levels == 2 && u_levels == 2) {
    os << "rows=" << rows << "  Pr[u=1]=" << common::FormatDouble(pr_u1, 3)
       << "  Pr[s=1|u=0]=" << common::FormatDouble(pr_s1_given_u0, 3)
       << "  Pr[s=1|u=1]=" << common::FormatDouble(pr_s1_given_u1, 3) << "\n";
  } else {
    os << "rows=" << rows << "  |S|=" << s_levels << "  |U|=" << u_levels << "\n";
    for (size_t u = 0; u < u_levels && u < pr_u.size(); ++u) {
      os << "  u=" << u << " Pr=" << common::FormatDouble(pr_u[u], 3) << "  Pr[s|u]:";
      for (size_t s = 0; s < pr_s_given_u[u].size(); ++s)
        os << " " << common::FormatDouble(pr_s_given_u[u][s], 3);
      os << "\n";
    }
  }
  for (size_t k = 0; k < feature_names.size(); ++k) {
    os << "  E[" << feature_names[k] << "] = " << common::FormatDouble(e_per_feature[k], 4)
       << "\n";
  }
  os << "  E (aggregate) = " << common::FormatDouble(e_aggregate, 4) << "\n";
  return os.str();
}

Result<FairnessReport> MakeFairnessReport(const data::Dataset& dataset,
                                          const EMetricOptions& options) {
  FairnessReport report;
  report.feature_names = dataset.feature_names();
  report.rows = dataset.size();
  report.pr_u1 = dataset.ProportionU1();
  report.pr_s1_given_u0 = dataset.ProportionS1GivenU(0);
  report.pr_s1_given_u1 = dataset.ProportionS1GivenU(1);
  report.s_levels = dataset.s_levels();
  report.u_levels = dataset.u_levels();
  report.pr_u.resize(report.u_levels);
  report.pr_s_given_u.resize(report.u_levels);
  for (size_t u = 0; u < report.u_levels; ++u) {
    report.pr_u[u] = dataset.ProportionU(static_cast<int>(u));
    report.pr_s_given_u[u].resize(report.s_levels);
    for (size_t s = 0; s < report.s_levels; ++s)
      report.pr_s_given_u[u][s] =
          dataset.ProportionSGivenU(static_cast<int>(s), static_cast<int>(u));
  }
  double acc = 0.0;
  for (size_t k = 0; k < dataset.dim(); ++k) {
    auto e = FeatureE(dataset, k, options);
    if (!e.ok()) return e.status();
    report.e_per_feature.push_back(*e);
    acc += *e;
  }
  report.e_aggregate = acc / static_cast<double>(dataset.dim());
  return report;
}

}  // namespace otfair::fairness
