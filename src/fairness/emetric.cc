#include "fairness/emetric.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/status.h"
#include "stats/divergence.h"
#include "stats/kde.h"

namespace otfair::fairness {

using common::Result;
using common::Status;

namespace {

/// Uniform grid of `count` points over [lo, hi] (single midpoint when
/// degenerate).
std::vector<double> UniformGrid(double lo, double hi, size_t count) {
  std::vector<double> grid;
  grid.reserve(count);
  if (count == 1 || !(hi > lo)) {
    grid.push_back(0.5 * (lo + hi));
    return grid;
  }
  const double step = (hi - lo) / static_cast<double>(count - 1);
  for (size_t i = 0; i < count; ++i) grid.push_back(lo + step * static_cast<double>(i));
  return grid;
}

}  // namespace

Result<EMetricBreakdown> FeatureEMetric(const data::Dataset& dataset, size_t k,
                                        const EMetricOptions& options) {
  if (dataset.empty()) return Status::InvalidArgument("empty dataset");
  if (k >= dataset.dim()) return Status::InvalidArgument("feature index out of range");
  if (options.grid_size < 2) return Status::InvalidArgument("grid_size must be >= 2");

  EMetricBreakdown out;
  out.e_u.assign(2, std::numeric_limits<double>::quiet_NaN());
  out.pr_u.assign(2, 0.0);

  const double n_total = static_cast<double>(dataset.size());
  double usable_weight = 0.0;
  double weighted_e = 0.0;

  for (int u = 0; u <= 1; ++u) {
    const std::vector<size_t> idx0 = dataset.GroupIndices({u, 0});
    const std::vector<size_t> idx1 = dataset.GroupIndices({u, 1});
    const double pr_u = static_cast<double>(idx0.size() + idx1.size()) / n_total;
    out.pr_u[static_cast<size_t>(u)] = pr_u;
    if (idx0.size() < options.min_group_size || idx1.size() < options.min_group_size) {
      continue;  // stratum not estimable; weight renormalized below
    }

    const std::vector<double> x0 = dataset.FeatureColumn(k, idx0);
    const std::vector<double> x1 = dataset.FeatureColumn(k, idx1);

    double lo = std::min(*std::min_element(x0.begin(), x0.end()),
                         *std::min_element(x1.begin(), x1.end()));
    double hi = std::max(*std::max_element(x0.begin(), x0.end()),
                         *std::max_element(x1.begin(), x1.end()));
    const std::vector<double> grid = UniformGrid(lo, hi, options.grid_size);

    auto kde0 = stats::GaussianKde::FitSilverman(x0);
    if (!kde0.ok()) return kde0.status();
    auto kde1 = stats::GaussianKde::FitSilverman(x1);
    if (!kde1.ok()) return kde1.status();
    auto pmf0 = kde0->PmfOnGrid(grid);
    if (!pmf0.ok()) return pmf0.status();
    auto pmf1 = kde1->PmfOnGrid(grid);
    if (!pmf1.ok()) return pmf1.status();

    auto e_u = stats::SymmetrizedKl(*pmf0, *pmf1, options.kl_floor);
    if (!e_u.ok()) return e_u.status();

    out.e_u[static_cast<size_t>(u)] = *e_u;
    usable_weight += pr_u;
    weighted_e += pr_u * (*e_u);
  }

  if (usable_weight <= 0.0)
    return Status::FailedPrecondition(
        "no u-stratum has both s-groups populated; E is undefined");
  out.e = weighted_e / usable_weight;
  return out;
}

Result<double> FeatureE(const data::Dataset& dataset, size_t k, const EMetricOptions& options) {
  auto breakdown = FeatureEMetric(dataset, k, options);
  if (!breakdown.ok()) return breakdown.status();
  return breakdown->e;
}

Result<double> AggregateE(const data::Dataset& dataset, const EMetricOptions& options) {
  if (dataset.dim() == 0) return Status::InvalidArgument("dataset has no features");
  double acc = 0.0;
  for (size_t k = 0; k < dataset.dim(); ++k) {
    auto e = FeatureE(dataset, k, options);
    if (!e.ok()) return e.status();
    acc += *e;
  }
  return acc / static_cast<double>(dataset.dim());
}

}  // namespace otfair::fairness
