#include "fairness/emetric.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/status.h"
#include "stats/divergence.h"
#include "stats/kde.h"

namespace otfair::fairness {

using common::Result;
using common::Status;

namespace {

/// Uniform grid of `count` points over [lo, hi] (single midpoint when
/// degenerate).
std::vector<double> UniformGrid(double lo, double hi, size_t count) {
  std::vector<double> grid;
  grid.reserve(count);
  if (count == 1 || !(hi > lo)) {
    grid.push_back(0.5 * (lo + hi));
    return grid;
  }
  const double step = (hi - lo) / static_cast<double>(count - 1);
  for (size_t i = 0; i < count; ++i) grid.push_back(lo + step * static_cast<double>(i));
  return grid;
}

}  // namespace

Result<EMetricBreakdown> FeatureEMetric(const data::Dataset& dataset, size_t k,
                                        const EMetricOptions& options) {
  if (dataset.empty()) return Status::InvalidArgument("empty dataset");
  if (k >= dataset.dim()) return Status::InvalidArgument("feature index out of range");
  if (options.grid_size < 2) return Status::InvalidArgument("grid_size must be >= 2");

  const size_t s_levels = dataset.s_levels();
  const size_t u_levels = dataset.u_levels();
  EMetricBreakdown out;
  out.e_u.assign(u_levels, std::numeric_limits<double>::quiet_NaN());
  out.pr_u.assign(u_levels, 0.0);

  const double n_total = static_cast<double>(dataset.size());
  double usable_weight = 0.0;
  double weighted_e = 0.0;

  // All |U| * |S| group index sets in one dataset pass.
  const std::vector<std::vector<size_t>> groups = dataset.GroupIndexBuckets();

  for (size_t u = 0; u < u_levels; ++u) {
    // Gather the stratum's estimable s-group samples (classes below
    // min_group_size are skipped individually); the shared KDE grid spans
    // their combined range. A stratum needs at least two estimable
    // classes to yield a pair — which for the binary case reproduces the
    // original all-or-nothing two-group computation exactly.
    std::vector<std::vector<double>> samples;
    double pr_u_count = 0.0;
    for (size_t s = 0; s < s_levels; ++s) {
      const std::vector<size_t>& idx = groups[u * s_levels + s];
      pr_u_count += static_cast<double>(idx.size());
      if (idx.size() < options.min_group_size) continue;
      samples.push_back(dataset.FeatureColumn(k, idx));
    }
    const double pr_u = pr_u_count / n_total;
    out.pr_u[u] = pr_u;
    if (samples.size() < 2) {
      continue;  // stratum not estimable; weight renormalized below
    }

    double lo = samples[0][0];
    double hi = samples[0][0];
    for (const std::vector<double>& x : samples) {
      lo = std::min(lo, *std::min_element(x.begin(), x.end()));
      hi = std::max(hi, *std::max_element(x.begin(), x.end()));
    }
    const std::vector<double> grid = UniformGrid(lo, hi, options.grid_size);

    std::vector<std::vector<double>> pmfs;
    pmfs.reserve(samples.size());
    for (const std::vector<double>& x : samples) {
      auto kde = stats::GaussianKde::FitSilverman(x);
      if (!kde.ok()) return kde.status();
      auto pmf = kde->PmfOnGrid(grid);
      if (!pmf.ok()) return pmf.status();
      pmfs.push_back(std::move(*pmf));
    }

    // Max over pairs: the worst-separated class pair is the stratum's E.
    double e_u = 0.0;
    for (size_t a = 0; a < pmfs.size(); ++a) {
      for (size_t b = a + 1; b < pmfs.size(); ++b) {
        auto pair_e = stats::SymmetrizedKl(pmfs[a], pmfs[b], options.kl_floor);
        if (!pair_e.ok()) return pair_e.status();
        e_u = std::max(e_u, *pair_e);
      }
    }

    out.e_u[u] = e_u;
    usable_weight += pr_u;
    weighted_e += pr_u * e_u;
  }

  if (usable_weight <= 0.0)
    return Status::FailedPrecondition(
        "no u-stratum has enough populated s-groups; E is undefined");
  out.e = weighted_e / usable_weight;
  return out;
}

Result<std::vector<double>> OneVsRestEMetric(const data::Dataset& dataset, int u, size_t k,
                                             const EMetricOptions& options) {
  if (dataset.empty()) return Status::InvalidArgument("empty dataset");
  if (k >= dataset.dim()) return Status::InvalidArgument("feature index out of range");
  if (u < 0 || static_cast<size_t>(u) >= dataset.u_levels())
    return Status::InvalidArgument("u level out of range");
  if (options.grid_size < 2) return Status::InvalidArgument("grid_size must be >= 2");

  const size_t s_levels = dataset.s_levels();
  std::vector<std::vector<double>> per_level(s_levels);
  std::vector<double> pooled;
  for (size_t s = 0; s < s_levels; ++s) {
    per_level[s] =
        dataset.FeatureColumn(k, dataset.GroupIndices({u, static_cast<int>(s)}));
    pooled.insert(pooled.end(), per_level[s].begin(), per_level[s].end());
  }
  if (pooled.empty()) return Status::FailedPrecondition("u stratum is empty");
  const double lo = *std::min_element(pooled.begin(), pooled.end());
  const double hi = *std::max_element(pooled.begin(), pooled.end());
  const std::vector<double> grid = UniformGrid(lo, hi, options.grid_size);

  std::vector<double> out(s_levels, std::numeric_limits<double>::quiet_NaN());
  for (size_t s = 0; s < s_levels; ++s) {
    // Rest = the pooled complement of level s.
    std::vector<double> rest;
    rest.reserve(pooled.size() - per_level[s].size());
    for (size_t other = 0; other < s_levels; ++other) {
      if (other == s) continue;
      rest.insert(rest.end(), per_level[other].begin(), per_level[other].end());
    }
    if (per_level[s].size() < options.min_group_size || rest.size() < options.min_group_size)
      continue;
    auto kde_s = stats::GaussianKde::FitSilverman(per_level[s]);
    if (!kde_s.ok()) return kde_s.status();
    auto kde_rest = stats::GaussianKde::FitSilverman(rest);
    if (!kde_rest.ok()) return kde_rest.status();
    auto pmf_s = kde_s->PmfOnGrid(grid);
    if (!pmf_s.ok()) return pmf_s.status();
    auto pmf_rest = kde_rest->PmfOnGrid(grid);
    if (!pmf_rest.ok()) return pmf_rest.status();
    auto e = stats::SymmetrizedKl(*pmf_s, *pmf_rest, options.kl_floor);
    if (!e.ok()) return e.status();
    out[s] = *e;
  }
  return out;
}

Result<double> FeatureE(const data::Dataset& dataset, size_t k, const EMetricOptions& options) {
  auto breakdown = FeatureEMetric(dataset, k, options);
  if (!breakdown.ok()) return breakdown.status();
  return breakdown->e;
}

Result<double> AggregateE(const data::Dataset& dataset, const EMetricOptions& options) {
  if (dataset.dim() == 0) return Status::InvalidArgument("dataset has no features");
  double acc = 0.0;
  for (size_t k = 0; k < dataset.dim(); ++k) {
    auto e = FeatureE(dataset, k, options);
    if (!e.ok()) return e.status();
    acc += *e;
  }
  return acc / static_cast<double>(dataset.dim());
}

}  // namespace otfair::fairness
