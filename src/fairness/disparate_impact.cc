#include "fairness/disparate_impact.h"

#include <algorithm>
#include <limits>

#include "common/status.h"

namespace otfair::fairness {

using common::Result;
using common::Status;

namespace {

Status ValidatePredictions(const data::Dataset& dataset, const std::vector<int>& predictions) {
  if (predictions.size() != dataset.size())
    return Status::InvalidArgument("predictions length must match dataset size");
  for (int p : predictions) {
    if (p != 0 && p != 1) return Status::InvalidArgument("predictions must be binary");
  }
  return Status::Ok();
}

/// Positive rate over an index set; count==0 reported via ok=false.
struct Rate {
  double value = 0.0;
  bool ok = false;
};

Rate RateOver(const std::vector<int>& predictions, const std::vector<size_t>& indices) {
  Rate r;
  if (indices.empty()) return r;
  size_t positives = 0;
  for (size_t i : indices) positives += static_cast<size_t>(predictions[i]);
  r.value = static_cast<double>(positives) / static_cast<double>(indices.size());
  r.ok = true;
  return r;
}

Result<double> Ratio(double numerator, double denominator) {
  if (denominator > 0.0) return numerator / denominator;
  if (numerator > 0.0) return std::numeric_limits<double>::infinity();
  return 1.0;  // neither group receives positives: trivially at parity
}

}  // namespace

Result<double> PositiveRate(const data::Dataset& dataset, const std::vector<int>& predictions,
                            int u, int s) {
  OTFAIR_RETURN_IF_ERROR(ValidatePredictions(dataset, predictions));
  const Rate r = RateOver(predictions, dataset.GroupIndices({u, s}));
  if (!r.ok) return Status::FailedPrecondition("empty (u, s) group");
  return r.value;
}

Result<double> DisparateImpact(const data::Dataset& dataset, const std::vector<int>& predictions,
                               int u) {
  auto rate0 = PositiveRate(dataset, predictions, u, 0);
  if (!rate0.ok()) return rate0.status();
  auto rate1 = PositiveRate(dataset, predictions, u, 1);
  if (!rate1.ok()) return rate1.status();
  return Ratio(*rate0, *rate1);
}

Result<double> DisparateImpactUnconditional(const data::Dataset& dataset,
                                            const std::vector<int>& predictions) {
  OTFAIR_RETURN_IF_ERROR(ValidatePredictions(dataset, predictions));
  std::vector<size_t> s0;
  std::vector<size_t> s1;
  for (size_t i = 0; i < dataset.size(); ++i) {
    (dataset.s(i) == 0 ? s0 : s1).push_back(i);
  }
  const Rate r0 = RateOver(predictions, s0);
  const Rate r1 = RateOver(predictions, s1);
  if (!r0.ok || !r1.ok) return Status::FailedPrecondition("empty s group");
  return Ratio(r0.value, r1.value);
}

Result<double> StatisticalParityDifference(const data::Dataset& dataset,
                                           const std::vector<int>& predictions, int u) {
  auto rate0 = PositiveRate(dataset, predictions, u, 0);
  if (!rate0.ok()) return rate0.status();
  auto rate1 = PositiveRate(dataset, predictions, u, 1);
  if (!rate1.ok()) return rate1.status();
  return *rate1 - *rate0;
}

Result<std::vector<double>> PositiveRatesPerLevel(const data::Dataset& dataset,
                                                  const std::vector<int>& predictions, int u) {
  OTFAIR_RETURN_IF_ERROR(ValidatePredictions(dataset, predictions));
  if (u < 0 || static_cast<size_t>(u) >= dataset.u_levels())
    return Status::InvalidArgument("u level out of range");
  std::vector<double> rates;
  rates.reserve(dataset.s_levels());
  for (size_t s = 0; s < dataset.s_levels(); ++s) {
    const Rate r = RateOver(predictions, dataset.GroupIndices({u, static_cast<int>(s)}));
    if (!r.ok) return Status::FailedPrecondition("empty (u, s) group");
    rates.push_back(r.value);
  }
  return rates;
}

namespace {

/// (min, max) positive rate across the s levels of stratum u — the two
/// rates every worst-pair metric reduces to.
Result<std::pair<double, double>> RateExtremes(const data::Dataset& dataset,
                                               const std::vector<int>& predictions, int u) {
  auto rates = PositiveRatesPerLevel(dataset, predictions, u);
  if (!rates.ok()) return rates.status();
  const auto [lo, hi] = std::minmax_element(rates->begin(), rates->end());
  return std::make_pair(*lo, *hi);
}

}  // namespace

Result<double> DisparateImpactWorstPair(const data::Dataset& dataset,
                                        const std::vector<int>& predictions, int u) {
  auto extremes = RateExtremes(dataset, predictions, u);
  if (!extremes.ok()) return extremes.status();
  return Ratio(extremes->first, extremes->second);
}

Result<double> StatisticalParityWorstPair(const data::Dataset& dataset,
                                          const std::vector<int>& predictions, int u) {
  auto extremes = RateExtremes(dataset, predictions, u);
  if (!extremes.ok()) return extremes.status();
  return extremes->second - extremes->first;
}

Result<double> Accuracy(const data::Dataset& dataset, const std::vector<int>& predictions) {
  OTFAIR_RETURN_IF_ERROR(ValidatePredictions(dataset, predictions));
  if (!dataset.has_outcome())
    return Status::FailedPrecondition("dataset has no outcome column");
  size_t correct = 0;
  for (size_t i = 0; i < dataset.size(); ++i) {
    if (predictions[i] == dataset.y(i)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(dataset.size());
}

}  // namespace otfair::fairness
