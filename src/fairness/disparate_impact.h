#ifndef OTFAIR_FAIRNESS_DISPARATE_IMPACT_H_
#define OTFAIR_FAIRNESS_DISPARATE_IMPACT_H_

#include <vector>

#include "common/result.h"
#include "data/dataset.h"

namespace otfair::fairness {

/// Classifier-output fairness proxies from paper §II-B, computed against a
/// vector of binary predictions aligned with the dataset rows.

/// u-conditional disparate impact (Def. 2.3):
///
///     DI(g, u) = Pr[g(x)=1 | s=0, u] / Pr[g(x)=1 | s=1, u]
///
/// DI == 1 is unbiased; DI > 0.8 passes the EEOC four-fifths rule the paper
/// cites. Returns +infinity when the denominator group never receives a
/// positive outcome but the numerator group does, and 1 when neither does.
/// Fails if either (u, s) group is empty.
common::Result<double> DisparateImpact(const data::Dataset& dataset,
                                       const std::vector<int>& predictions, int u);

/// Unconditional disparate impact Pr[g=1|s=0] / Pr[g=1|s=1].
common::Result<double> DisparateImpactUnconditional(const data::Dataset& dataset,
                                                    const std::vector<int>& predictions);

/// u-conditional statistical parity difference
/// Pr[g=1|s=1,u] - Pr[g=1|s=0,u]; 0 is parity.
common::Result<double> StatisticalParityDifference(const data::Dataset& dataset,
                                                   const std::vector<int>& predictions, int u);

/// Multi-group disparate impact, worst pair (u-conditional):
///
///     DI_worst(g, u) = min_{s, s'} Pr[g=1 | s, u] / Pr[g=1 | s', u]
///                    = (min_s rate_s) / (max_s rate_s)
///
/// 1 is parity; the EEOC four-fifths rule generalizes to DI_worst > 0.8
/// (every class pair passes). At |S| = 2 this is min(DI, 1/DI) of the
/// binary DisparateImpact — direction-free, so it works for any level
/// ordering. Returns 1 when no group receives positives; fails if any
/// (u, s) group is empty.
common::Result<double> DisparateImpactWorstPair(const data::Dataset& dataset,
                                                const std::vector<int>& predictions, int u);

/// Multi-group statistical parity, worst pair:
/// max_s Pr[g=1|s,u] - min_s Pr[g=1|s,u]; 0 is parity.
common::Result<double> StatisticalParityWorstPair(const data::Dataset& dataset,
                                                  const std::vector<int>& predictions, int u);

/// One-vs-rest positive rates: element s is Pr[g=1 | s, u] — the |S|
/// per-class rates behind the worst-pair metrics, for reporting.
common::Result<std::vector<double>> PositiveRatesPerLevel(const data::Dataset& dataset,
                                                          const std::vector<int>& predictions,
                                                          int u);

/// Positive-prediction rate within group (u, s); the building block of both
/// proxies, exposed for reporting.
common::Result<double> PositiveRate(const data::Dataset& dataset,
                                    const std::vector<int>& predictions, int u, int s);

/// Classification accuracy against the dataset's outcome column (requires
/// has_outcome()).
common::Result<double> Accuracy(const data::Dataset& dataset,
                                const std::vector<int>& predictions);

}  // namespace otfair::fairness

#endif  // OTFAIR_FAIRNESS_DISPARATE_IMPACT_H_
