#ifndef OTFAIR_FAIRNESS_LOGISTIC_H_
#define OTFAIR_FAIRNESS_LOGISTIC_H_

#include <vector>

#include "common/matrix.h"
#include "common/result.h"
#include "data/dataset.h"

namespace otfair::fairness {

/// Options for logistic-regression training.
struct LogisticOptions {
  size_t max_iterations = 500;
  double learning_rate = 0.5;
  double l2 = 1e-4;
  /// Stop when the gradient norm falls below this.
  double tolerance = 1e-7;
};

/// L2-regularized logistic regression trained by full-batch gradient
/// descent on standardized features.
///
/// This is the classification rule g(X) -> Y_hat of the paper's model
/// (Fig. 1): the pipeline trains g on (un)repaired data and evaluates
/// disparate impact / accuracy before vs after repair, demonstrating the
/// "sufficient condition for classifier outcome fairness" claim of §II-A.
class LogisticRegression {
 public:
  /// Fits to an n x d feature matrix and binary labels.
  static common::Result<LogisticRegression> Fit(const common::Matrix& features,
                                                const std::vector<int>& labels,
                                                const LogisticOptions& options = {});

  /// Fits to a dataset's features against its outcome column.
  static common::Result<LogisticRegression> FitDataset(const data::Dataset& dataset,
                                                       const LogisticOptions& options = {});

  /// P(y = 1 | x); x must have length dim().
  double PredictProbability(const std::vector<double>& x) const;

  /// Hard 0/1 prediction at threshold 0.5.
  int Classify(const std::vector<double>& x) const;

  /// Hard predictions for every row of a dataset.
  std::vector<int> ClassifyDataset(const data::Dataset& dataset) const;

  size_t dim() const { return weights_.size(); }
  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }
  size_t iterations() const { return iterations_; }

 private:
  LogisticRegression() = default;

  std::vector<double> weights_;       // in standardized feature space
  double bias_ = 0.0;
  std::vector<double> feature_mean_;  // standardization parameters
  std::vector<double> feature_sd_;
  size_t iterations_ = 0;
};

}  // namespace otfair::fairness

#endif  // OTFAIR_FAIRNESS_LOGISTIC_H_
