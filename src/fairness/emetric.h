#ifndef OTFAIR_FAIRNESS_EMETRIC_H_
#define OTFAIR_FAIRNESS_EMETRIC_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"

namespace otfair::fairness {

/// Options for the KDE-based conditional-dependence metric.
struct EMetricOptions {
  /// Number of evaluation points for the common KDE grid per u-stratum.
  size_t grid_size = 100;
  /// Smoothing floor applied to pmf states before KL (Def. 2.4 uses finite
  /// supports, so zero states must be floored to keep E finite).
  double kl_floor = 1e-12;
  /// Strata whose (u, s) sub-groups have fewer samples than this are
  /// skipped (their Pr[u] weight is renormalized over the remaining
  /// strata). Tiny research sets can lack a sub-group entirely; skipping
  /// matches how the paper's empirical E behaves at small n_R.
  size_t min_group_size = 2;
};

/// Per-u-stratum breakdown of the s|u-dependence metric for one feature.
struct EMetricBreakdown {
  double e = 0.0;           // the u-weighted aggregate E_k (Eq. 3)
  std::vector<double> e_u;  // E_{u,k} per u level; NaN if skipped
  std::vector<double> pr_u; // empirical Pr[u]
};

/// The paper's fairness measure for feature k (Def. 2.4 + Eq. 3):
///
///     E_u,k = 1/2 D[f(x_k|0,u) || f(x_k|1,u)] + 1/2 D[f(x_k|1,u) || f(x_k|0,u)]
///     E_k   = sum_u Pr[u] * E_u,k
///
/// where the conditional densities are Gaussian-KDE estimates (Silverman
/// bandwidth) evaluated on a shared uniform grid spanning the combined
/// sample range of the u-stratum's estimable s groups. Lower is fairer; 0
/// means the s|u-conditionals are indistinguishable.
///
/// Multi-group extension (|S| > 2): E_{u,k} is the MAXIMUM symmetrized KL
/// over all s-level pairs within the stratum — repair is only complete
/// when every pair of classes is indistinguishable, so the worst pair is
/// the binding measure. At |S| = 2 the single pair makes this exactly the
/// paper's binary definition.
common::Result<EMetricBreakdown> FeatureEMetric(const data::Dataset& dataset, size_t k,
                                                const EMetricOptions& options = {});

/// One-vs-rest view for a single stratum/feature: the symmetrized KL of
/// each s level's conditional against the pooled density of all other
/// levels, on the stratum's shared grid. Levels with fewer than
/// `options.min_group_size` samples come back NaN. Useful for locating
/// WHICH class a multi-group repair left behind.
common::Result<std::vector<double>> OneVsRestEMetric(const data::Dataset& dataset, int u,
                                                     size_t k,
                                                     const EMetricOptions& options = {});

/// Convenience: just the scalar E_k.
common::Result<double> FeatureE(const data::Dataset& dataset, size_t k,
                                const EMetricOptions& options = {});

/// E aggregated over all features (arithmetic mean of the per-feature E_k,
/// matching the "aggregated over both features" series of paper Figs. 3-4).
common::Result<double> AggregateE(const data::Dataset& dataset,
                                  const EMetricOptions& options = {});

}  // namespace otfair::fairness

#endif  // OTFAIR_FAIRNESS_EMETRIC_H_
