#ifndef OTFAIR_FAIRNESS_JOINT_EMETRIC_H_
#define OTFAIR_FAIRNESS_JOINT_EMETRIC_H_

#include <cstddef>

#include "common/result.h"
#include "data/dataset.h"

namespace otfair::fairness {

/// Options for the joint (bivariate) dependence metric.
struct JointEMetricOptions {
  /// Grid points per axis (total states = grid_size^2).
  size_t grid_size = 40;
  double kl_floor = 1e-12;
  size_t min_group_size = 4;
};

/// Joint-distribution analogue of the per-feature E metric, over a feature
/// *pair* (k1, k2):
///
///     E_u = symmKL( f(x_{k1}, x_{k2} | 0, u) || f(x_{k1}, x_{k2} | 1, u) )
///     E   = sum_u Pr[u] E_u
///
/// with 2-D KDE-estimated conditionals on a shared product grid. This is
/// the diagnostic the per-feature repair cannot drive to zero when the
/// *correlation structure* of (x_{k1}, x_{k2}) depends on s (paper §VI
/// intra-feature correlation discussion): the per-feature marginals match
/// after repair, but the copulas still differ, and this metric sees that.
common::Result<double> JointFeaturePairE(const data::Dataset& dataset, size_t k1, size_t k2,
                                         const JointEMetricOptions& options = {});

}  // namespace otfair::fairness

#endif  // OTFAIR_FAIRNESS_JOINT_EMETRIC_H_
