#ifndef OTFAIR_FAIRNESS_DAMAGE_H_
#define OTFAIR_FAIRNESS_DAMAGE_H_

#include <vector>

#include "common/result.h"
#include "data/dataset.h"

namespace otfair::fairness {

/// Data-damage metrics: how far a repair moved the data. The paper's
/// discussion (§VI) frames the partial-repair trade-off as fairness gained
/// (E reduced) versus information lost (features displaced); these are the
/// displacement side of that trade-off.
struct DamageReport {
  /// Per-feature mean |x' - x|.
  std::vector<double> mean_abs_displacement;
  /// Per-feature root-mean-square displacement.
  std::vector<double> rms_displacement;
  /// Mean Euclidean displacement of full feature vectors.
  double mean_l2_displacement = 0.0;
};

/// Compares two row-aligned datasets (same rows, same order; `after` is the
/// repaired copy of `before`).
common::Result<DamageReport> ComputeDamage(const data::Dataset& before,
                                           const data::Dataset& after);

}  // namespace otfair::fairness

#endif  // OTFAIR_FAIRNESS_DAMAGE_H_
