#include "fairness/logistic.h"

#include <cmath>

#include "common/check.h"
#include "common/status.h"

namespace otfair::fairness {

using common::Matrix;
using common::Result;
using common::Status;

namespace {
double Sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }
}  // namespace

Result<LogisticRegression> LogisticRegression::Fit(const Matrix& features,
                                                   const std::vector<int>& labels,
                                                   const LogisticOptions& options) {
  const size_t n = features.rows();
  const size_t d = features.cols();
  if (n == 0 || d == 0) return Status::InvalidArgument("empty training data");
  if (labels.size() != n) return Status::InvalidArgument("labels length mismatch");
  for (int y : labels) {
    if (y != 0 && y != 1) return Status::InvalidArgument("labels must be binary");
  }

  LogisticRegression model;
  model.feature_mean_.assign(d, 0.0);
  model.feature_sd_.assign(d, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double* x = features.row(i);
    for (size_t k = 0; k < d; ++k) model.feature_mean_[k] += x[k];
  }
  for (size_t k = 0; k < d; ++k) model.feature_mean_[k] /= static_cast<double>(n);
  for (size_t i = 0; i < n; ++i) {
    const double* x = features.row(i);
    for (size_t k = 0; k < d; ++k) {
      const double dlt = x[k] - model.feature_mean_[k];
      model.feature_sd_[k] += dlt * dlt;
    }
  }
  for (size_t k = 0; k < d; ++k) {
    model.feature_sd_[k] = std::sqrt(model.feature_sd_[k] / static_cast<double>(n));
    if (model.feature_sd_[k] <= 0.0) model.feature_sd_[k] = 1.0;  // constant column
  }

  // Standardize once up front.
  Matrix z(n, d);
  for (size_t i = 0; i < n; ++i) {
    const double* x = features.row(i);
    double* zr = z.row(i);
    for (size_t k = 0; k < d; ++k)
      zr[k] = (x[k] - model.feature_mean_[k]) / model.feature_sd_[k];
  }

  model.weights_.assign(d, 0.0);
  model.bias_ = 0.0;
  std::vector<double> grad(d);
  const double inv_n = 1.0 / static_cast<double>(n);

  for (size_t iter = 1; iter <= options.max_iterations; ++iter) {
    model.iterations_ = iter;
    std::fill(grad.begin(), grad.end(), 0.0);
    double grad_bias = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double* zr = z.row(i);
      double act = model.bias_;
      for (size_t k = 0; k < d; ++k) act += model.weights_[k] * zr[k];
      const double err = Sigmoid(act) - static_cast<double>(labels[i]);
      for (size_t k = 0; k < d; ++k) grad[k] += err * zr[k];
      grad_bias += err;
    }
    double grad_norm2 = grad_bias * inv_n * grad_bias * inv_n;
    for (size_t k = 0; k < d; ++k) {
      grad[k] = grad[k] * inv_n + options.l2 * model.weights_[k];
      grad_norm2 += grad[k] * grad[k];
    }
    for (size_t k = 0; k < d; ++k) model.weights_[k] -= options.learning_rate * grad[k];
    model.bias_ -= options.learning_rate * grad_bias * inv_n;
    if (grad_norm2 < options.tolerance * options.tolerance) break;
  }
  return model;
}

Result<LogisticRegression> LogisticRegression::FitDataset(const data::Dataset& dataset,
                                                          const LogisticOptions& options) {
  if (!dataset.has_outcome())
    return Status::FailedPrecondition("dataset has no outcome column to fit against");
  return Fit(dataset.features(), dataset.outcomes(), options);
}

double LogisticRegression::PredictProbability(const std::vector<double>& x) const {
  OTFAIR_CHECK_EQ(x.size(), dim());
  double act = bias_;
  for (size_t k = 0; k < dim(); ++k)
    act += weights_[k] * (x[k] - feature_mean_[k]) / feature_sd_[k];
  return Sigmoid(act);
}

int LogisticRegression::Classify(const std::vector<double>& x) const {
  return PredictProbability(x) >= 0.5 ? 1 : 0;
}

std::vector<int> LogisticRegression::ClassifyDataset(const data::Dataset& dataset) const {
  std::vector<int> out;
  out.reserve(dataset.size());
  for (size_t i = 0; i < dataset.size(); ++i) out.push_back(Classify(dataset.Row(i)));
  return out;
}

}  // namespace otfair::fairness
