#ifndef OTFAIR_OT_EXACT_H_
#define OTFAIR_OT_EXACT_H_

#include <vector>

#include "common/matrix.h"
#include "common/result.h"
#include "ot/plan.h"

namespace otfair::ot {

/// Options for the exact Kantorovich solver.
struct ExactSolverOptions {
  /// Mass below this is treated as exhausted during augmentation.
  double mass_tolerance = 1e-12;
  /// Safety cap on augmentation rounds; 0 means "use the built-in bound"
  /// (n*m + 16(n+m), far above anything a well-posed instance needs).
  size_t max_augmentations = 0;
};

/// Solves the discrete Kantorovich problem (paper Eq. 5)
///
///     pi* = argmin_{pi in Pi(a, b)} <C, pi>
///
/// exactly, via successive shortest augmenting paths with Johnson
/// potentials on the bipartite transportation graph (a classical exact
/// min-cost-flow scheme; same optimum as the network-simplex EMD used by
/// POT). Complexity is O(k * (n + m)^2) with k augmentation rounds,
/// k <= n + m in practice — the O(n^3 log n) regime the paper quotes for
/// unregularized OT (§IV-A1).
///
/// `a` and `b` are non-negative weight vectors with equal totals (relative
/// mismatch up to 1e-9 is tolerated and `b` is rescaled); `cost` is the
/// n x m ground-cost matrix. Returns the optimal coupling and objective.
common::Result<TransportPlan> SolveExact(const std::vector<double>& a,
                                         const std::vector<double>& b,
                                         const common::Matrix& cost,
                                         const ExactSolverOptions& options = {});

}  // namespace otfair::ot

#endif  // OTFAIR_OT_EXACT_H_
