#include "ot/solver.h"

#include <algorithm>
#include <utility>

#include "ot/cost.h"
#include "ot/monotone.h"

namespace otfair::ot {

using common::Matrix;
using common::Result;
using common::Status;

namespace {

Status RequireSorted(const DiscreteMeasure& mu, const DiscreteMeasure& nu) {
  if (!mu.IsSorted() || !nu.IsSorted())
    return Status::InvalidArgument("Solve1D requires sorted supports");
  return Status::Ok();
}

/// Exact successive-shortest-paths backend (ot/exact.h).
class ExactSolver : public Solver {
 public:
  explicit ExactSolver(const ExactSolverOptions& options) : options_(options) {}

  const std::string& name() const override {
    static const std::string kName = "exact";
    return kName;
  }
  bool is_exact() const override { return true; }
  bool supports_general_cost() const override { return true; }

  Result<TransportPlan> Solve(const std::vector<double>& a, const std::vector<double>& b,
                              const Matrix& cost) const override {
    return SolveExact(a, b, cost, options_);
  }

 private:
  ExactSolverOptions options_;
};

/// Entropy-regularized Sinkhorn backend (ot/sinkhorn.h).
class SinkhornSolver : public Solver {
 public:
  explicit SinkhornSolver(const SinkhornOptions& options) : options_(options) {}

  const std::string& name() const override {
    static const std::string kName = "sinkhorn";
    return kName;
  }
  bool is_exact() const override { return false; }
  bool supports_general_cost() const override { return true; }

  Result<TransportPlan> Solve(const std::vector<double>& a, const std::vector<double>& b,
                              const Matrix& cost) const override {
    auto result = SolveSinkhorn(a, b, cost, options_);
    if (!result.ok()) return result.status();
    return std::move(result->plan);
  }

  /// Sparse materialization applies the epsilon-aware band truncation:
  /// entries below the mass-relative `plan_truncation` threshold are
  /// dropped at extraction time and their mass folded back onto the
  /// surviving band, so the CSR plan keeps exact row marginals and
  /// column marginals within solver tolerance (see SinkhornOptions).
  Result<SparsePlan> Solve1DSparse(const DiscreteMeasure& mu,
                                   const DiscreteMeasure& nu) const override {
    auto dense = Solve1DDense(mu, nu);
    if (!dense.ok()) return dense.status();
    return TruncateToSparse(*dense, options_.plan_truncation);
  }

 private:
  SinkhornOptions options_;
};

/// O(n + m) monotone-rearrangement backend, optimal for convex 1-D costs
/// (ot/monotone.h). It has no general dense solve: the coupling is defined
/// by the quantile structure of the line, not by a cost matrix.
class MonotoneSolver : public Solver {
 public:
  const std::string& name() const override {
    static const std::string kName = "monotone";
    return kName;
  }
  bool is_exact() const override { return true; }
  bool supports_general_cost() const override { return false; }

  Result<TransportPlan> Solve(const std::vector<double>& /*a*/,
                              const std::vector<double>& /*b*/,
                              const Matrix& /*cost*/) const override {
    return Status::Unimplemented(
        "monotone solver is 1-D only (no general ground cost); use Solve1D "
        "or pick the exact/sinkhorn backend");
  }

  Result<std::vector<PlanEntry>> Solve1D(const DiscreteMeasure& mu,
                                         const DiscreteMeasure& nu) const override {
    if (Status status = RequireSorted(mu, nu); !status.ok()) return status;
    auto coupling = SolveMonotone1D(mu, nu);
    if (!coupling.ok()) return coupling.status();
    return std::move(coupling->entries);
  }
};

}  // namespace

Result<std::vector<PlanEntry>> Solver::Solve1D(const DiscreteMeasure& mu,
                                               const DiscreteMeasure& nu) const {
  if (Status status = RequireSorted(mu, nu); !status.ok()) return status;
  const Matrix cost = SquaredEuclideanCost(mu.support(), nu.support());
  auto plan = Solve(mu.weights(), nu.weights(), cost);
  if (!plan.ok()) return plan.status();
  return plan->ToSparse();
}

Result<Matrix> Solver::Solve1DDense(const DiscreteMeasure& mu,
                                    const DiscreteMeasure& nu) const {
  // Dense backends already produce the coupling matrix — return it
  // directly rather than roundtripping through the sparse representation
  // (this is the per-channel hot call of Algorithm 1).
  if (supports_general_cost()) {
    if (Status status = RequireSorted(mu, nu); !status.ok()) return status;
    const Matrix cost = SquaredEuclideanCost(mu.support(), nu.support());
    auto plan = Solve(mu.weights(), nu.weights(), cost);
    if (!plan.ok()) return plan.status();
    return std::move(plan->coupling);
  }
  auto entries = Solve1D(mu, nu);
  if (!entries.ok()) return entries.status();
  return SparseToDense(*entries, mu.size(), nu.size());
}

Result<SparsePlan> Solver::Solve1DSparse(const DiscreteMeasure& mu,
                                         const DiscreteMeasure& nu) const {
  // Default route: whatever `Solve1D` produces (the monotone staircase
  // directly, or a dense backend's extracted support set) compresses to
  // CSR in O(nnz) — external registry backends need no changes.
  auto entries = Solve1D(mu, nu);
  if (!entries.ok()) return entries.status();
  return SparsePlan::FromEntries(std::move(*entries), mu.size(), nu.size());
}

SolverRegistry& SolverRegistry::Global() {
  static SolverRegistry* registry = [] {
    auto* r = new SolverRegistry();
    // Built-ins; registration into an empty map cannot fail.
    (void)r->Register("monotone", [](const SolverOptions&) {
      return std::make_shared<const MonotoneSolver>();
    });
    (void)r->Register("exact", [](const SolverOptions& options) {
      return std::make_shared<const ExactSolver>(options.exact);
    });
    (void)r->Register("sinkhorn", [](const SolverOptions& options) {
      return std::make_shared<const SinkhornSolver>(options.sinkhorn);
    });
    return r;
  }();
  return *registry;
}

Status SolverRegistry::Register(const std::string& name, Factory factory) {
  if (name.empty()) return Status::InvalidArgument("solver name must be non-empty");
  if (Contains(name))
    return Status::InvalidArgument("solver '" + name + "' already registered");
  factories_.emplace_back(name, std::move(factory));
  return Status::Ok();
}

Result<std::shared_ptr<const Solver>> SolverRegistry::Create(
    const std::string& name, const SolverOptions& options) const {
  for (const auto& [known, factory] : factories_) {
    if (known == name) return factory(options);
  }
  std::string known_names;
  for (const std::string& n : Names()) {
    if (!known_names.empty()) known_names += ", ";
    known_names += n;
  }
  return Status::NotFound("unknown solver '" + name + "' (known: " + known_names + ")");
}

bool SolverRegistry::Contains(const std::string& name) const {
  for (const auto& [known, factory] : factories_) {
    if (known == name) return true;
  }
  return false;
}

std::vector<std::string> SolverRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

Result<std::shared_ptr<const Solver>> MakeSolver(const std::string& name,
                                                 const SolverOptions& options) {
  return SolverRegistry::Global().Create(name, options);
}

std::shared_ptr<const Solver> DefaultSolver() {
  static const std::shared_ptr<const Solver> solver =
      std::make_shared<const MonotoneSolver>();
  return solver;
}

}  // namespace otfair::ot
