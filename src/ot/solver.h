#ifndef OTFAIR_OT_SOLVER_H_
#define OTFAIR_OT_SOLVER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/matrix.h"
#include "common/result.h"
#include "common/status.h"
#include "ot/exact.h"
#include "ot/measure.h"
#include "ot/plan.h"
#include "ot/sinkhorn.h"

namespace otfair::ot {

/// Polymorphic OT backend: the single seam through which the repair
/// pipeline, the CLI and the benchmarks obtain Kantorovich couplings.
///
/// The paper's Algorithm 1 needs one OT solve per (u, s, k) channel
/// (Eq. 13) and deliberately leaves the solver interchangeable — exact
/// Kantorovich (§IV-A1's O(n^3 log n) regime), entropic Sinkhorn
/// (O(n^2/eps^2)), or the O(n) 1-D monotone map, which is optimal for
/// every convex ground cost on the line. Implementations wrap exactly one
/// of those backends; callers hold a `shared_ptr<const Solver>` and never
/// branch on a backend enum.
///
/// Two solve granularities are exposed:
///  - `Solve` is the general dense problem under an arbitrary ground
///    cost (used by the joint/bivariate repair on product grids);
///  - `Solve1D` is the 1-D squared-Euclidean problem between two
///    measures on their own (sorted) supports, returned sparse — the
///    hot call of the per-channel pipeline.
class Solver {
 public:
  virtual ~Solver() = default;

  /// Registry name of the backend ("monotone", "exact", "sinkhorn", ...).
  virtual const std::string& name() const = 0;

  /// True when returned couplings satisfy the marginal constraints to
  /// machine precision; entropic backends are approximate and callers
  /// should widen validation tolerances accordingly.
  virtual bool is_exact() const = 0;

  /// True when `Solve` accepts an arbitrary ground cost. The monotone
  /// backend exploits 1-D convex-cost structure and returns
  /// Unimplemented from `Solve`; probe this before dispatching product-
  /// grid (multi-dimensional) problems.
  virtual bool supports_general_cost() const = 0;

  /// Solves the discrete Kantorovich problem between weight vectors `a`
  /// (n) and `b` (m) under the n x m ground cost, returning the dense
  /// coupling and its unregularized objective <C, pi>.
  virtual common::Result<TransportPlan> Solve(const std::vector<double>& a,
                                              const std::vector<double>& b,
                                              const common::Matrix& cost) const = 0;

  /// Solves mu -> nu under the squared-Euclidean cost on the measures'
  /// own supports, which must be sorted (ascending). Entries index atoms
  /// of `mu` (rows) and `nu` (columns). The base implementation builds
  /// the dense cost and defers to `Solve`; backends with 1-D shortcuts
  /// override it.
  virtual common::Result<std::vector<PlanEntry>> Solve1D(const DiscreteMeasure& mu,
                                                         const DiscreteMeasure& nu) const;

  /// `Solve1D` densified into an n x m coupling matrix — kept for
  /// callers that want the dense shape (cross-validation, tests).
  common::Result<common::Matrix> Solve1DDense(const DiscreteMeasure& mu,
                                              const DiscreteMeasure& nu) const;

  /// The sparse-native hot path: `Solve1D`'s coupling as a CSR
  /// `SparsePlan` — the shape the per-channel repair plans store (Eq. 13
  /// couplings on the support grid). The base implementation routes
  /// through `Solve1D` (and therefore, for dense backends, the existing
  /// dense `Solve`), so third-party `SolverRegistry` backends keep
  /// working unchanged; built-ins with sparse structure override it:
  /// the monotone staircase becomes CSR with zero densification, and the
  /// Sinkhorn backend applies its `plan_truncation` band extraction
  /// (see SinkhornOptions) at materialization time.
  virtual common::Result<SparsePlan> Solve1DSparse(const DiscreteMeasure& mu,
                                                   const DiscreteMeasure& nu) const;
};

/// Tuning knobs consumed by the built-in backends at construction; a
/// registry factory receives one of these so a CLI flag or config file can
/// parameterize any backend uniformly.
struct SolverOptions {
  ExactSolverOptions exact;
  SinkhornOptions sinkhorn;
};

/// Name -> factory map for OT backends. Registering a backend here makes
/// it reachable everywhere a solver name is accepted: `DesignOptions`,
/// `otfair_cli --solver=...`, the benches, and the parity tests.
///
/// The three built-ins ("monotone", "exact", "sinkhorn") are registered
/// on first use of `Global()`. Thread-compatible: registration is
/// expected at startup, lookups afterwards.
class SolverRegistry {
 public:
  using Factory =
      std::function<std::shared_ptr<const Solver>(const SolverOptions& options)>;

  /// Process-wide registry instance with the built-ins pre-registered.
  static SolverRegistry& Global();

  /// Registers `factory` under `name`; InvalidArgument on duplicates or
  /// an empty name.
  common::Status Register(const std::string& name, Factory factory);

  /// Instantiates the backend registered under `name`; NotFound (with the
  /// known names in the message) otherwise.
  common::Result<std::shared_ptr<const Solver>> Create(
      const std::string& name, const SolverOptions& options = {}) const;

  bool Contains(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> Names() const;

 private:
  std::vector<std::pair<std::string, Factory>> factories_;
};

/// Convenience: `SolverRegistry::Global().Create(name, options)`.
common::Result<std::shared_ptr<const Solver>> MakeSolver(const std::string& name,
                                                         const SolverOptions& options = {});

/// The pipeline default: a shared monotone solver (exact and O(n) for the
/// 1-D squared-Euclidean channels of Algorithm 1).
std::shared_ptr<const Solver> DefaultSolver();

}  // namespace otfair::ot

#endif  // OTFAIR_OT_SOLVER_H_
