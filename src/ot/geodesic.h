#ifndef OTFAIR_OT_GEODESIC_H_
#define OTFAIR_OT_GEODESIC_H_

#include <vector>

#include "common/result.h"
#include "ot/measure.h"
#include "ot/plan.h"

namespace otfair::ot {

/// Displacement (McCann) interpolation along a transport plan: every plan
/// entry (i, j, m) between source atoms `xs` and target atoms `ys` becomes
/// an atom of mass m at `(1 - t) xs[i] + t ys[j]`. For the W2-optimal plan
/// this traces the Wasserstein geodesic nu_t of paper Eq. 7; t = 0 recovers
/// the source, t = 1 the target.
common::Result<DiscreteMeasure> DisplacementInterpolation(const std::vector<PlanEntry>& entries,
                                                          const std::vector<double>& xs,
                                                          const std::vector<double>& ys,
                                                          double t);

/// Projects an arbitrary 1-D measure onto a fixed, strictly-increasing grid
/// by splitting each atom's mass between its two neighbouring grid points
/// in proportion to proximity. Interior atoms keep their mass and mean
/// exactly; atoms outside the grid range snap to the nearest end point.
common::Result<DiscreteMeasure> ProjectToGrid(const DiscreteMeasure& measure,
                                              const std::vector<double>& grid);

}  // namespace otfair::ot

#endif  // OTFAIR_OT_GEODESIC_H_
