#ifndef OTFAIR_OT_PLAN_H_
#define OTFAIR_OT_PLAN_H_

#include <cstddef>
#include <vector>

#include "common/matrix.h"

namespace otfair::ot {

/// One atom of a sparse transport plan: move `mass` from source atom `i` to
/// target atom `j`.
struct PlanEntry {
  size_t i;
  size_t j;
  double mass;
};

/// A Kantorovich coupling between two discrete measures, plus the achieved
/// transport objective `<C, pi>` (paper Eq. 5/6).
///
/// The coupling is stored densely (n x m); optimal plans are sparse (at most
/// n + m - 1 non-zeros for exact solvers) and `ToSparse()` extracts the
/// non-zero entries.
struct TransportPlan {
  common::Matrix coupling;
  double cost = 0.0;

  /// Non-zero entries above `threshold`.
  std::vector<PlanEntry> ToSparse(double threshold = 1e-15) const;

  /// Largest violation of the two marginal constraints against `a` (rows)
  /// and `b` (columns); exact solvers should report ~1e-12 here.
  double MarginalError(const std::vector<double>& a, const std::vector<double>& b) const;
};

/// Densifies a sparse plan into an n x m coupling matrix.
common::Matrix SparseToDense(const std::vector<PlanEntry>& entries, size_t n, size_t m);

/// Transport objective of a sparse plan under cost matrix C.
double SparsePlanCost(const std::vector<PlanEntry>& entries, const common::Matrix& cost);

}  // namespace otfair::ot

#endif  // OTFAIR_OT_PLAN_H_
