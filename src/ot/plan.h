#ifndef OTFAIR_OT_PLAN_H_
#define OTFAIR_OT_PLAN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/matrix.h"
#include "common/result.h"

namespace otfair::ot {

/// One atom of a sparse transport plan: move `mass` from source atom `i` to
/// target atom `j`.
struct PlanEntry {
  size_t i;
  size_t j;
  double mass;
};

/// A Kantorovich coupling between two discrete measures, plus the achieved
/// transport objective `<C, pi>` (paper Eq. 5/6).
///
/// The coupling is stored densely (n x m); optimal plans are sparse (at most
/// n + m - 1 non-zeros for exact solvers) and `ToSparse()` extracts the
/// non-zero entries.
struct TransportPlan {
  common::Matrix coupling;
  double cost = 0.0;

  /// Non-zero entries above `threshold`.
  std::vector<PlanEntry> ToSparse(double threshold = 1e-15) const;

  /// Largest violation of the two marginal constraints against `a` (rows)
  /// and `b` (columns); exact solvers should report ~1e-12 here.
  double MarginalError(const std::vector<double>& a, const std::vector<double>& b) const;
};

/// A transport plan in CSR (compressed sparse row) form — the canonical
/// plan representation of the repair pipeline.
///
/// Every plan the system produces is near-diagonally sparse: the monotone
/// 1-D solver emits at most n + m - 1 staircase entries, the exact
/// solver's flow decomposition is similarly thin, and entropic Sinkhorn
/// couplings decay as exp(-c/eps) outside a band. Storing plans as CSR
/// makes the per-channel artifacts O(nnz) instead of O(n_Q^2) in both
/// memory and every downstream scan (repair-table construction, marginal
/// validation, serialization).
///
/// Layout: `row_offsets()` has rows()+1 entries; row r's support occupies
/// positions [row_offsets()[r], row_offsets()[r+1]) of `col_indices()` /
/// `values()`. All construction paths validate column bounds; entries
/// produced by `FromEntries` / `FromDense` / `TruncateToSparse` have
/// strictly increasing columns within each row (`columns_sorted()`).
class SparsePlan {
 public:
  /// Empty 0 x 0 plan.
  SparsePlan() = default;

  /// Contiguous view of one row's support.
  struct RowView {
    const uint32_t* cols = nullptr;
    const double* values = nullptr;
    size_t nnz = 0;
  };

  /// Builds a rows x cols CSR plan from triplet entries. Entries are
  /// sorted row-major (an O(nnz) check skips the sort for pre-sorted
  /// input, e.g. the monotone staircase) and duplicates of the same
  /// (i, j) cell are merged. CHECK-fails on out-of-range indices.
  static SparsePlan FromEntries(std::vector<PlanEntry> entries, size_t rows, size_t cols);

  /// Extracts entries strictly above `threshold` from a dense coupling.
  static SparsePlan FromDense(const common::Matrix& dense, double threshold = 0.0);

  /// Builds from raw CSR arrays, validating shape invariants (offset
  /// monotonicity, bounds, final offset == nnz). The deserialization
  /// entry point.
  static common::Result<SparsePlan> FromCsr(size_t rows, size_t cols,
                                            std::vector<size_t> row_offsets,
                                            std::vector<uint32_t> col_indices,
                                            std::vector<double> values);

  /// Densifies into a rows() x cols() coupling matrix.
  common::Matrix ToDense() const;

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t nnz() const { return values_.size(); }
  bool empty() const { return rows_ == 0 && cols_ == 0; }
  /// True when every row's column indices are strictly increasing (all
  /// built-in construction paths guarantee it; `FromCsr` detects it).
  bool columns_sorted() const { return columns_sorted_; }

  RowView Row(size_t r) const;
  double RowSum(size_t r) const;

  /// Per-row mass (length rows()); O(nnz).
  std::vector<double> RowSums() const;
  /// Per-column mass (length cols()); O(nnz). Rows with sorted, bounds-
  /// checked-at-construction columns take a short-circuit scatter with no
  /// per-entry validation.
  std::vector<double> ColSums() const;
  /// Total transported mass.
  double Sum() const;

  /// Transposed copy (CSC of this plan, re-expressed as CSR); O(nnz).
  SparsePlan Transposed() const;

  /// Transport objective <C, pi> under a dense rows() x cols() cost.
  double Cost(const common::Matrix& cost) const;

  /// Largest element-wise |a_ij - b_ij| against another plan of the same
  /// shape, treating structural zeros as 0.0 (patterns may differ).
  double MaxAbsDiff(const SparsePlan& other) const;

  /// Resident bytes of the CSR arrays (the per-channel memory the bench
  /// trajectory tracks).
  size_t MemoryBytes() const;

  const std::vector<size_t>& row_offsets() const { return row_offsets_; }
  const std::vector<uint32_t>& col_indices() const { return col_indices_; }
  const std::vector<double>& values() const { return values_; }
  /// Mutable values (pattern is fixed); used by tests to perturb mass and
  /// by the Sinkhorn truncation refold.
  std::vector<double>& mutable_values() { return values_; }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  bool columns_sorted_ = true;
  std::vector<size_t> row_offsets_;  // rows_ + 1 when rows_ > 0
  std::vector<uint32_t> col_indices_;
  std::vector<double> values_;
};

/// CSR extraction with epsilon-aware truncation for entropic plans: row i
/// keeps entries >= rel_threshold * row_mass / cols (its own maximum is
/// always kept) and the dropped mass is folded back proportionally onto
/// the kept entries, so row marginals are preserved to roundoff and
/// column marginals to rel_threshold * total mass. A non-positive
/// rel_threshold keeps every strictly positive entry.
SparsePlan TruncateToSparse(const common::Matrix& dense, double rel_threshold);

/// Densifies a sparse plan into an n x m coupling matrix.
common::Matrix SparseToDense(const std::vector<PlanEntry>& entries, size_t n, size_t m);

/// Transport objective of a sparse plan under cost matrix C.
double SparsePlanCost(const std::vector<PlanEntry>& entries, const common::Matrix& cost);

}  // namespace otfair::ot

#endif  // OTFAIR_OT_PLAN_H_
