#include "ot/barycenter.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/matrix.h"
#include "common/status.h"
#include "ot/cost.h"
#include "ot/geodesic.h"
#include "ot/monotone.h"

namespace otfair::ot {

using common::Matrix;
using common::Result;
using common::Status;

Result<DiscreteMeasure> QuantileBarycenter1D(const DiscreteMeasure& mu0,
                                             const DiscreteMeasure& mu1, double t) {
  if (!(t >= 0.0 && t <= 1.0)) return Status::InvalidArgument("t must lie in [0, 1]");
  auto coupling = SolveMonotone1D(mu0, mu1);
  if (!coupling.ok()) return coupling.status();
  const std::vector<double>& xs = coupling->sorted_source.support();
  const std::vector<double>& ys = coupling->sorted_target.support();

  // The staircase goes straight into CSR (it is already row-major) and
  // the interpolation walks its row views — the same sparse plan shape
  // every other consumer of a coupling now iterates.
  const SparsePlan plan =
      SparsePlan::FromEntries(std::move(coupling->entries), xs.size(), ys.size());

  // Along the monotone coupling both endpoints are non-decreasing, so the
  // interpolated atoms come out already sorted; merge coincident positions.
  std::vector<double> support;
  std::vector<double> weights;
  support.reserve(plan.nnz());
  weights.reserve(plan.nnz());
  for (size_t i = 0; i < plan.rows(); ++i) {
    const SparsePlan::RowView row = plan.Row(i);
    for (size_t k = 0; k < row.nnz; ++k) {
      const double pos = (1.0 - t) * xs[i] + t * ys[row.cols[k]];
      if (!support.empty() && pos == support.back()) {
        weights.back() += row.values[k];
      } else {
        support.push_back(pos);
        weights.push_back(row.values[k]);
      }
    }
  }
  return DiscreteMeasure::Create(std::move(support), std::move(weights));
}

Result<DiscreteMeasure> QuantileBarycenterOnGrid(const DiscreteMeasure& mu0,
                                                 const DiscreteMeasure& mu1, double t,
                                                 const std::vector<double>& grid) {
  auto atoms = QuantileBarycenter1D(mu0, mu1, t);
  if (!atoms.ok()) return atoms.status();
  return ProjectToGrid(*atoms, grid);
}

Result<DiscreteMeasure> QuantileBarycenter1D(const std::vector<DiscreteMeasure>& measures,
                                             const std::vector<double>& lambdas) {
  if (measures.empty()) return Status::InvalidArgument("need at least one measure");
  if (measures.size() != lambdas.size())
    return Status::InvalidArgument("measures/lambdas length mismatch");
  double lambda_total = 0.0;
  for (double l : lambdas) {
    if (!(l >= 0.0)) return Status::InvalidArgument("lambdas must be non-negative");
    lambda_total += l;
  }
  if (lambda_total <= 0.0) return Status::InvalidArgument("lambdas must not all be zero");
  std::vector<double> lam(lambdas);
  for (double& l : lam) l /= lambda_total;
  const size_t num = measures.size();
  for (const DiscreteMeasure& m : measures) {
    if (m.empty()) return Status::InvalidArgument("empty measure");
    if (!m.IsSorted())
      return Status::InvalidArgument("quantile barycenter requires sorted measures");
  }

  // Simultaneous sweep over the common refinement of the N quantile
  // functions: every measure holds a cursor (atom index + mass left in
  // that atom); each step consumes the smallest remaining chunk from all
  // cursors at once and emits one barycenter atom at the lambda-weighted
  // position. A measure whose mass runs out early (inputs are normalized
  // only to roundoff) pins to its last atom.
  struct Cursor {
    size_t idx = 0;
    double remaining = 0.0;
    bool exhausted = false;
  };
  std::vector<Cursor> cursors(num);
  size_t total_atoms = 0;
  for (size_t s = 0; s < num; ++s) {
    cursors[s].remaining = measures[s].weight_at(0);
    total_atoms += measures[s].size();
  }

  std::vector<double> support;
  std::vector<double> weights;
  support.reserve(total_atoms);
  weights.reserve(total_atoms);
  while (true) {
    bool all_exhausted = true;
    double delta = 0.0;
    for (const Cursor& c : cursors) {
      if (c.exhausted) continue;
      delta = all_exhausted ? c.remaining : std::min(delta, c.remaining);
      all_exhausted = false;
    }
    if (all_exhausted) break;
    double pos = 0.0;
    for (size_t s = 0; s < num; ++s)
      pos += lam[s] * measures[s].support_at(cursors[s].idx);
    if (delta > 0.0) {
      if (!support.empty() && pos == support.back()) {
        weights.back() += delta;
      } else {
        support.push_back(pos);
        weights.push_back(delta);
      }
    }
    for (Cursor& c : cursors) {
      if (c.exhausted) continue;
      c.remaining -= delta;
      if (c.remaining <= 0.0) {
        const size_t n = measures[&c - cursors.data()].size();
        if (c.idx + 1 < n) {
          ++c.idx;
          c.remaining = measures[&c - cursors.data()].weight_at(c.idx);
        } else {
          c.exhausted = true;  // pinned to the last atom for any residual
        }
      }
    }
  }
  if (support.empty())
    return Status::InvalidArgument("barycenter inputs carry no mass");
  return DiscreteMeasure::Create(std::move(support), std::move(weights));
}

Result<DiscreteMeasure> QuantileBarycenterOnGrid(const std::vector<DiscreteMeasure>& measures,
                                                 const std::vector<double>& lambdas,
                                                 const std::vector<double>& grid) {
  auto atoms = QuantileBarycenter1D(measures, lambdas);
  if (!atoms.ok()) return atoms.status();
  return ProjectToGrid(*atoms, grid);
}

Result<DiscreteMeasure> BregmanBarycenter(const std::vector<DiscreteMeasure>& measures,
                                          const std::vector<double>& lambdas,
                                          const std::vector<double>& grid,
                                          const BregmanBarycenterOptions& options) {
  if (measures.empty()) return Status::InvalidArgument("need at least one measure");
  if (measures.size() != lambdas.size())
    return Status::InvalidArgument("measures/lambdas length mismatch");
  if (grid.size() < 1) return Status::InvalidArgument("empty barycenter support");
  if (!(options.epsilon > 0.0)) return Status::InvalidArgument("epsilon must be positive");

  double lambda_total = 0.0;
  for (double l : lambdas) {
    if (!(l >= 0.0)) return Status::InvalidArgument("lambdas must be non-negative");
    lambda_total += l;
  }
  if (lambda_total <= 0.0) return Status::InvalidArgument("lambdas must not all be zero");
  std::vector<double> lam(lambdas);
  for (double& l : lam) l /= lambda_total;

  const size_t num = measures.size();
  const size_t ng = grid.size();

  // Gibbs kernels between the shared barycenter grid and each input support.
  std::vector<Matrix> kernels(num);
  for (size_t k = 0; k < num; ++k) {
    Matrix cost = SquaredEuclideanCost(grid, measures[k].support());
    kernels[k] = Matrix(ng, measures[k].size());
    for (size_t i = 0; i < ng; ++i) {
      const double* crow = cost.row(i);
      double* krow = kernels[k].row(i);
      for (size_t j = 0; j < measures[k].size(); ++j)
        krow[j] = std::exp(-crow[j] / options.epsilon);
    }
  }

  // Iterative Bregman projections (Benamou et al. 2015, Alg. 1): scale each
  // coupling to its data marginal, then set the barycenter to the weighted
  // geometric mean of the grid marginals.
  std::vector<std::vector<double>> u(num, std::vector<double>(ng, 1.0));
  std::vector<double> bary(ng, 1.0 / static_cast<double>(ng));
  std::vector<double> prev(ng, 0.0);

  for (size_t iter = 1; iter <= options.max_iterations; ++iter) {
    std::vector<double> log_bary(ng, 0.0);
    std::vector<std::vector<double>> kv(num, std::vector<double>(ng, 0.0));
    for (size_t k = 0; k < num; ++k) {
      const size_t nk = measures[k].size();
      const std::vector<double>& p = measures[k].weights();
      // v_k = p_k ./ (K_k' u_k)
      std::vector<double> v(nk, 0.0);
      for (size_t j = 0; j < nk; ++j) {
        double denom = 0.0;
        for (size_t i = 0; i < ng; ++i) denom += kernels[k](i, j) * u[k][i];
        v[j] = denom > 0.0 ? p[j] / denom : 0.0;
      }
      // kv_k = K_k v_k (grid marginal of the k-th scaled coupling)
      for (size_t i = 0; i < ng; ++i) {
        double acc = 0.0;
        const double* krow = kernels[k].row(i);
        for (size_t j = 0; j < nk; ++j) acc += krow[j] * v[j];
        kv[k][i] = acc;
        log_bary[i] += lam[k] * (acc > 0.0 ? std::log(acc) : -1e30);
      }
    }
    double total = 0.0;
    for (size_t i = 0; i < ng; ++i) {
      bary[i] = std::exp(log_bary[i]);
      if (!std::isfinite(bary[i])) return Status::NotConverged("bregman barycenter diverged");
      total += bary[i];
    }
    if (total <= 0.0) return Status::NotConverged("bregman barycenter lost all mass");
    // u_k = bary ./ (K_k v_k)
    for (size_t k = 0; k < num; ++k) {
      for (size_t i = 0; i < ng; ++i) u[k][i] = kv[k][i] > 0.0 ? bary[i] / kv[k][i] : 0.0;
    }
    double delta = 0.0;
    for (size_t i = 0; i < ng; ++i) delta = std::max(delta, std::fabs(bary[i] - prev[i]));
    prev = bary;
    if (delta < options.tolerance * total) break;
  }

  return DiscreteMeasure::Create(grid, std::move(bary));
}

}  // namespace otfair::ot
