#ifndef OTFAIR_OT_MEASURE_H_
#define OTFAIR_OT_MEASURE_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace otfair::ot {

/// A discrete probability measure on a one-dimensional support:
/// `mu = sum_i w_i * delta(x_i)`.
///
/// This is the measure type used throughout the repair pipeline: the paper
/// designs one OT plan per feature (channel) k, so all transported measures
/// are univariate (see paper §IV-A). Weights are kept explicitly normalized;
/// the support need not be sorted but many operations (CDF, quantiles,
/// monotone coupling) require it, and `SortedBySupport()` returns a sorted
/// copy.
class DiscreteMeasure {
 public:
  DiscreteMeasure() = default;

  /// Builds a measure from atoms and weights (same length, weights >= 0 and
  /// not all zero). Weights are normalized to sum to one.
  static common::Result<DiscreteMeasure> Create(std::vector<double> support,
                                                std::vector<double> weights);

  /// Builds a measure from weights that are ALREADY normalized (sum within
  /// fp tolerance of one) and keeps them bit-for-bit as given — no division.
  /// Deserializers use this so parse(serialize(m)) reproduces m exactly;
  /// inputs whose weights do not sum to ~1 are rejected, not repaired.
  static common::Result<DiscreteMeasure> FromNormalized(std::vector<double> support,
                                                        std::vector<double> weights);

  /// Empirical measure of samples: every sample gets weight 1/n.
  /// Duplicate positions are kept as separate atoms.
  static common::Result<DiscreteMeasure> FromSamples(std::vector<double> samples);

  /// Uniform measure on the given support points.
  static common::Result<DiscreteMeasure> Uniform(std::vector<double> support);

  size_t size() const { return support_.size(); }
  bool empty() const { return support_.empty(); }
  const std::vector<double>& support() const { return support_; }
  const std::vector<double>& weights() const { return weights_; }
  double support_at(size_t i) const { return support_[i]; }
  double weight_at(size_t i) const { return weights_[i]; }

  /// True if support is non-decreasing.
  bool IsSorted() const;

  /// Returns a copy with atoms sorted by support position (weights of
  /// coincident atoms are preserved as separate atoms, stably ordered).
  DiscreteMeasure SortedBySupport() const;

  /// Mean of the measure.
  double Mean() const;
  /// Variance of the measure.
  double Variance() const;

  /// Right-continuous CDF evaluated at x. Requires sorted support.
  double Cdf(double x) const;

  /// Generalized inverse CDF (quantile function) at q in [0, 1]. Requires
  /// sorted support. Returns the smallest atom x with CDF(x) >= q.
  double Quantile(double q) const;

  /// Largest absolute deviation of `weights` from a proper pmf; used by
  /// validation tests.
  double NormalizationError() const;

 private:
  DiscreteMeasure(std::vector<double> support, std::vector<double> weights)
      : support_(std::move(support)), weights_(std::move(weights)) {}

  std::vector<double> support_;
  std::vector<double> weights_;
};

}  // namespace otfair::ot

#endif  // OTFAIR_OT_MEASURE_H_
