#include "ot/exact.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/status.h"

namespace otfair::ot {

using common::Matrix;
using common::Result;
using common::Status;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// State for one successive-shortest-path run. Node numbering: sources are
/// [0, n), sinks are [n, n + m).
struct SspState {
  size_t n;
  size_t m;
  const Matrix* cost;
  Matrix flow;                     // n x m transported mass
  std::vector<double> potential;   // Johnson potentials, length n + m
  std::vector<double> rem_supply;  // length n
  std::vector<double> rem_demand;  // length m

  std::vector<double> dist;    // Dijkstra distances
  std::vector<int> parent;     // predecessor node, -1 for roots
  std::vector<char> visited;
};

/// Min-heap entry: (tentative distance, node). Stale entries (distance no
/// longer current) are discarded lazily at pop time.
using HeapEntry = std::pair<double, int>;

/// Binary-heap Dijkstra over the residual graph, rooted at every source
/// with remaining supply. Settles nodes in nondecreasing distance order
/// and stops at the first settled sink with remaining demand — the
/// nearest deficit sink — returning its node index, or -1 if none is
/// reachable. On return, `visited` nodes carry exact distances; for every
/// unvisited node the true shortest distance is >= the returned target's
/// distance, which is what the caller's Johnson potential update
/// (min(dist, dist_target)) relies on.
int RunDijkstra(SspState& s, double mass_tol) {
  const size_t total = s.n + s.m;
  s.dist.assign(total, kInf);
  s.parent.assign(total, -1);
  s.visited.assign(total, 0);
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<HeapEntry>> heap;
  for (size_t i = 0; i < s.n; ++i) {
    if (s.rem_supply[i] > mass_tol) {
      s.dist[i] = 0.0;
      heap.emplace(0.0, static_cast<int>(i));
    }
  }

  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (s.visited[u] || d > s.dist[u]) continue;  // stale entry
    s.visited[u] = 1;
    if (static_cast<size_t>(u) >= s.n &&
        s.rem_demand[static_cast<size_t>(u) - s.n] > mass_tol) {
      return u;  // nearest sink with remaining demand
    }

    if (static_cast<size_t>(u) < s.n) {
      // Source node: forward arcs to every sink.
      const size_t i = static_cast<size_t>(u);
      const double* crow = s.cost->row(i);
      const double pu = s.potential[i];
      for (size_t j = 0; j < s.m; ++j) {
        const size_t v = s.n + j;
        if (s.visited[v]) continue;
        double rc = crow[j] + pu - s.potential[v];
        if (rc < 0.0) rc = 0.0;  // floating-point slack
        const double nd = d + rc;
        if (nd < s.dist[v]) {
          s.dist[v] = nd;
          s.parent[v] = u;
          heap.emplace(nd, static_cast<int>(v));
        }
      }
    } else {
      // Sink node: backward arcs along existing flow.
      const size_t j = static_cast<size_t>(u) - s.n;
      const double pu = s.potential[u];
      for (size_t i = 0; i < s.n; ++i) {
        if (s.visited[i] || s.flow(i, j) <= mass_tol) continue;
        double rc = -(*s.cost)(i, j) + pu - s.potential[i];
        if (rc < 0.0) rc = 0.0;
        const double nd = d + rc;
        if (nd < s.dist[i]) {
          s.dist[i] = nd;
          s.parent[i] = u;
          heap.emplace(nd, static_cast<int>(i));
        }
      }
    }
  }
  return -1;  // no deficit sink reachable
}

/// Augments along the parent path ending at sink node `target`; returns the
/// mass moved.
double Augment(SspState& s, int target, double mass_tol) {
  // Walk back to the root source, computing the bottleneck.
  double bottleneck = s.rem_demand[static_cast<size_t>(target) - s.n];
  int node = target;
  while (s.parent[node] >= 0) {
    const int prev = s.parent[node];
    if (static_cast<size_t>(prev) >= s.n) {
      // Backward arc sink(prev) -> source(node): bounded by existing flow.
      const size_t j = static_cast<size_t>(prev) - s.n;
      const size_t i = static_cast<size_t>(node);
      bottleneck = std::min(bottleneck, s.flow(i, j));
    }
    node = prev;
  }
  OTFAIR_CHECK_LT(static_cast<size_t>(node), s.n);
  bottleneck = std::min(bottleneck, s.rem_supply[static_cast<size_t>(node)]);
  if (bottleneck <= mass_tol) return 0.0;

  // Apply the augmentation.
  int v = target;
  while (s.parent[v] >= 0) {
    const int prev = s.parent[v];
    if (static_cast<size_t>(prev) < s.n) {
      // Forward arc source(prev) -> sink(v).
      s.flow(static_cast<size_t>(prev), static_cast<size_t>(v) - s.n) += bottleneck;
    } else {
      // Backward arc sink(prev) -> source(v).
      s.flow(static_cast<size_t>(v), static_cast<size_t>(prev) - s.n) -= bottleneck;
    }
    v = prev;
  }
  s.rem_supply[static_cast<size_t>(v)] -= bottleneck;
  s.rem_demand[static_cast<size_t>(target) - s.n] -= bottleneck;
  return bottleneck;
}

}  // namespace

Result<TransportPlan> SolveExact(const std::vector<double>& a, const std::vector<double>& b,
                                 const Matrix& cost, const ExactSolverOptions& options) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0 || m == 0) return Status::InvalidArgument("empty marginal");
  if (cost.rows() != n || cost.cols() != m)
    return Status::InvalidArgument("cost matrix shape mismatch");

  double sum_a = 0.0;
  double sum_b = 0.0;
  for (double w : a) {
    if (!(w >= 0.0) || !std::isfinite(w))
      return Status::InvalidArgument("source weights must be non-negative and finite");
    sum_a += w;
  }
  for (double w : b) {
    if (!(w >= 0.0) || !std::isfinite(w))
      return Status::InvalidArgument("target weights must be non-negative and finite");
    sum_b += w;
  }
  if (sum_a <= 0.0 || sum_b <= 0.0) return Status::InvalidArgument("marginals must carry mass");
  if (std::fabs(sum_a - sum_b) > 1e-9 * std::max(sum_a, sum_b))
    return Status::InvalidArgument("unbalanced problem: marginal totals differ");

  SspState state;
  state.n = n;
  state.m = m;
  state.cost = &cost;
  state.flow = Matrix(n, m);
  state.potential.assign(n + m, 0.0);
  state.rem_supply = a;
  state.rem_demand = b;
  // Rescale demand so totals match bit-exactly (guards accumulation drift).
  const double scale = sum_a / sum_b;
  for (double& w : state.rem_demand) w *= scale;

  // Initial sink potentials keep all forward reduced costs non-negative even
  // for negative ground costs.
  for (size_t j = 0; j < m; ++j) {
    double lo = kInf;
    for (size_t i = 0; i < n; ++i) lo = std::min(lo, cost(i, j));
    state.potential[n + j] = lo;
  }

  const double mass_tol = options.mass_tolerance * std::max(1.0, sum_a);
  size_t max_rounds = options.max_augmentations;
  if (max_rounds == 0) max_rounds = n * m + 16 * (n + m);

  double remaining = sum_a;
  size_t rounds = 0;
  while (remaining > mass_tol) {
    if (++rounds > max_rounds)
      return Status::NotConverged("exact OT solver exceeded augmentation budget");
    const int target = RunDijkstra(state, mass_tol);
    if (target < 0)
      return Status::Internal("exact OT solver: no augmenting path in balanced problem");
    // Johnson potential update keeps reduced costs non-negative.
    const double dt = state.dist[static_cast<size_t>(target)];
    for (size_t v = 0; v < n + m; ++v) {
      state.potential[v] += std::min(state.dist[v], dt);
    }
    const double moved = Augment(state, target, mass_tol);
    if (moved <= 0.0)
      return Status::Internal("exact OT solver: degenerate augmentation");
    remaining -= moved;
  }

  TransportPlan plan;
  plan.cost = state.flow.Dot(cost);
  plan.coupling = std::move(state.flow);
  return plan;
}

}  // namespace otfair::ot
