#include "ot/cost.h"

#include <cmath>

#include "common/check.h"

namespace otfair::ot {

common::Matrix SquaredEuclideanCost(const std::vector<double>& xs,
                                    const std::vector<double>& ys) {
  common::Matrix cost(xs.size(), ys.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    double* row = cost.row(i);
    for (size_t j = 0; j < ys.size(); ++j) {
      const double d = xs[i] - ys[j];
      row[j] = d * d;
    }
  }
  return cost;
}

common::Matrix LpCost(const std::vector<double>& xs, const std::vector<double>& ys, int p) {
  OTFAIR_CHECK_GE(p, 1);
  if (p == 2) return SquaredEuclideanCost(xs, ys);
  common::Matrix cost(xs.size(), ys.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    double* row = cost.row(i);
    for (size_t j = 0; j < ys.size(); ++j) {
      const double d = std::fabs(xs[i] - ys[j]);
      row[j] = (p == 1) ? d : std::pow(d, p);
    }
  }
  return cost;
}

}  // namespace otfair::ot
