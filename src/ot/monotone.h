#ifndef OTFAIR_OT_MONOTONE_H_
#define OTFAIR_OT_MONOTONE_H_

#include <vector>

#include "common/result.h"
#include "ot/measure.h"
#include "ot/plan.h"

namespace otfair::ot {

/// Computes the monotone (north-west-corner / quantile) coupling between two
/// one-dimensional discrete measures in O(n + m) after sorting.
///
/// For measures on the real line and any *convex* ground cost h(|x - y|)
/// (in particular every Lp^p cost with p >= 1), the monotone rearrangement
/// is an optimal Kantorovich plan — so this solver returns the same optimum
/// as `SolveExact` at a tiny fraction of the cost. It is the workhorse for
/// the per-feature (1-D) plans of the paper's repair pipeline, and it is the
/// discrete analogue of the comonotone coupling underpinning the quantile
/// characterization of W_p in 1-D.
///
/// Entries are indexed against the *sorted* orders of the two supports; if
/// either input is unsorted the entries refer to positions in the sorted
/// copies, and `sorted_source` / `sorted_target` give those copies.
struct MonotoneCoupling {
  std::vector<PlanEntry> entries;
  DiscreteMeasure sorted_source;
  DiscreteMeasure sorted_target;
};

common::Result<MonotoneCoupling> SolveMonotone1D(const DiscreteMeasure& mu,
                                                 const DiscreteMeasure& nu);

/// p-Wasserstein distance between 1-D measures via the monotone coupling:
/// `W_p(mu, nu) = (sum_k mass_k |x_k - y_k|^p)^(1/p)` (paper Eq. 6).
common::Result<double> Wasserstein1D(const DiscreteMeasure& mu, const DiscreteMeasure& nu,
                                     int p = 2);

}  // namespace otfair::ot

#endif  // OTFAIR_OT_MONOTONE_H_
