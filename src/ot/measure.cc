#include "ot/measure.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace otfair::ot {

using common::Result;
using common::Status;

Result<DiscreteMeasure> DiscreteMeasure::Create(std::vector<double> support,
                                                std::vector<double> weights) {
  if (support.empty()) return Status::InvalidArgument("measure needs at least one atom");
  if (support.size() != weights.size())
    return Status::InvalidArgument("support/weights length mismatch");
  double total = 0.0;
  for (double w : weights) {
    if (!(w >= 0.0))  // catches NaN too
      return Status::InvalidArgument("weights must be non-negative and finite");
    total += w;
  }
  if (!(total > 0.0)) return Status::InvalidArgument("weights must not all be zero");
  for (double x : support) {
    if (!std::isfinite(x)) return Status::InvalidArgument("support atoms must be finite");
  }
  for (double& w : weights) w /= total;
  return DiscreteMeasure(std::move(support), std::move(weights));
}

Result<DiscreteMeasure> DiscreteMeasure::FromNormalized(std::vector<double> support,
                                                        std::vector<double> weights) {
  if (support.empty()) return Status::InvalidArgument("measure needs at least one atom");
  if (support.size() != weights.size())
    return Status::InvalidArgument("support/weights length mismatch");
  double total = 0.0;
  for (double w : weights) {
    if (!(w >= 0.0)) return Status::InvalidArgument("weights must be non-negative and finite");
    total += w;
  }
  if (std::abs(total - 1.0) > 1e-6)
    return Status::InvalidArgument("weights must already sum to one");
  for (double x : support) {
    if (!std::isfinite(x)) return Status::InvalidArgument("support atoms must be finite");
  }
  return DiscreteMeasure(std::move(support), std::move(weights));
}

Result<DiscreteMeasure> DiscreteMeasure::FromSamples(std::vector<double> samples) {
  if (samples.empty()) return Status::InvalidArgument("empty sample");
  std::vector<double> weights(samples.size(), 1.0 / static_cast<double>(samples.size()));
  return Create(std::move(samples), std::move(weights));
}

Result<DiscreteMeasure> DiscreteMeasure::Uniform(std::vector<double> support) {
  if (support.empty()) return Status::InvalidArgument("empty support");
  std::vector<double> weights(support.size(), 1.0 / static_cast<double>(support.size()));
  return Create(std::move(support), std::move(weights));
}

bool DiscreteMeasure::IsSorted() const {
  return std::is_sorted(support_.begin(), support_.end());
}

DiscreteMeasure DiscreteMeasure::SortedBySupport() const {
  std::vector<size_t> order(support_.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [this](size_t a, size_t b) { return support_[a] < support_[b]; });
  std::vector<double> s(support_.size());
  std::vector<double> w(support_.size());
  for (size_t i = 0; i < order.size(); ++i) {
    s[i] = support_[order[i]];
    w[i] = weights_[order[i]];
  }
  return DiscreteMeasure(std::move(s), std::move(w));
}

double DiscreteMeasure::Mean() const {
  double m = 0.0;
  for (size_t i = 0; i < support_.size(); ++i) m += weights_[i] * support_[i];
  return m;
}

double DiscreteMeasure::Variance() const {
  const double m = Mean();
  double v = 0.0;
  for (size_t i = 0; i < support_.size(); ++i) {
    const double d = support_[i] - m;
    v += weights_[i] * d * d;
  }
  return v;
}

double DiscreteMeasure::Cdf(double x) const {
  OTFAIR_DCHECK(IsSorted());
  double acc = 0.0;
  for (size_t i = 0; i < support_.size() && support_[i] <= x; ++i) acc += weights_[i];
  return acc;
}

double DiscreteMeasure::Quantile(double q) const {
  OTFAIR_DCHECK(IsSorted());
  OTFAIR_CHECK(q >= 0.0 && q <= 1.0);
  double acc = 0.0;
  for (size_t i = 0; i < support_.size(); ++i) {
    acc += weights_[i];
    if (acc >= q - 1e-15) return support_[i];
  }
  return support_.back();
}

double DiscreteMeasure::NormalizationError() const {
  double total = 0.0;
  for (double w : weights_) total += w;
  return std::fabs(total - 1.0);
}

}  // namespace otfair::ot
