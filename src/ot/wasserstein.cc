#include "ot/wasserstein.h"

#include <cmath>

#include "common/status.h"
#include "ot/cost.h"
#include "ot/exact.h"

namespace otfair::ot {

using common::Result;
using common::Status;

Result<double> WassersteinExact(const DiscreteMeasure& mu, const DiscreteMeasure& nu, int p) {
  if (p < 1) return Status::InvalidArgument("Wasserstein order p must be >= 1");
  common::Matrix cost = LpCost(mu.support(), nu.support(), p);
  auto plan = SolveExact(mu.weights(), nu.weights(), cost);
  if (!plan.ok()) return plan.status();
  return std::pow(plan->cost, 1.0 / static_cast<double>(p));
}

}  // namespace otfair::ot
