#ifndef OTFAIR_OT_SINKHORN_H_
#define OTFAIR_OT_SINKHORN_H_

#include <vector>

#include "common/matrix.h"
#include "common/result.h"
#include "ot/plan.h"

namespace otfair::ot {

/// Options for entropy-regularized OT (Cuturi 2013; Sinkhorn-Knopp 1967).
struct SinkhornOptions {
  /// Entropic regularization strength. Smaller -> closer to the exact plan,
  /// but slower convergence and (without log_domain) numerical underflow.
  double epsilon = 0.05;
  /// Maximum Sinkhorn iterations before giving up.
  size_t max_iterations = 10000;
  /// Converged when the worst marginal violation falls below this.
  double tolerance = 1e-9;
  /// Run the iteration on log-scaled potentials; slower per iteration but
  /// immune to under/overflow at small epsilon.
  bool log_domain = false;
  /// Mass-relative truncation applied when the plan is materialized as a
  /// `SparsePlan` (the Solver::Solve1DSparse path): row i drops entries
  /// below `plan_truncation * row_mass / n` and folds the dropped mass
  /// back proportionally, so row marginals stay exact (to roundoff) and
  /// column marginals move by at most `plan_truncation` * total mass —
  /// well inside the default solver tolerance. The entropic kernel decays
  /// as exp(-c/epsilon), so the surviving band narrows as epsilon shrinks
  /// ("epsilon-aware"): the threshold is relative, not absolute, and
  /// adapts to however much the plan has concentrated. Non-positive
  /// disables truncation (every positive entry is kept). Dense `Solve`
  /// results are never truncated.
  double plan_truncation = 1e-12;
};

/// Result of a Sinkhorn solve: the regularized plan, its *unregularized*
/// transport objective `<C, pi>`, iterations used and convergence flag.
struct SinkhornResult {
  TransportPlan plan;
  size_t iterations = 0;
  bool converged = false;
};

/// Solves entropy-regularized OT between weight vectors `a`, `b` under
/// ground cost `cost`:
///
///     pi_eps = argmin <C, pi> - eps * H(pi)  s.t.  pi in Pi(a, b)
///
/// by Sinkhorn-Knopp matrix scaling. This is the O(n^2 / eps^2) alternative
/// the paper cites (§IV-A1, refs [33]-[35]) to the cubic exact solver.
/// Returns NotConverged only if the iteration diverges (NaN); hitting the
/// iteration cap reports `converged = false` with the best plan found.
common::Result<SinkhornResult> SolveSinkhorn(const std::vector<double>& a,
                                             const std::vector<double>& b,
                                             const common::Matrix& cost,
                                             const SinkhornOptions& options = {});

}  // namespace otfair::ot

#endif  // OTFAIR_OT_SINKHORN_H_
