#ifndef OTFAIR_OT_BARYCENTER_H_
#define OTFAIR_OT_BARYCENTER_H_

#include <vector>

#include "common/result.h"
#include "ot/measure.h"
#include "ot/sinkhorn.h"

namespace otfair::ot {

/// Wasserstein-2 barycenters between two 1-D measures (paper Eq. 7):
///
///     nu_t = argmin_nu (1 - t) W2²(mu0, nu) + t W2²(mu1, nu),  t in [0, 1]
///
/// In one dimension the minimizer is the displacement interpolation along
/// the W2 geodesic, with quantile function
/// `F_nu^{-1} = (1 - t) F_0^{-1} + t F_1^{-1}`. The paper's "fair
/// barycentre" is `t = 0.5`, equidistant from both s-conditionals.

/// Exact t-barycenter via the monotone coupling: each coupled mass chunk
/// (x0, x1, m) contributes an atom at `(1 - t) x0 + t x1` with mass m.
/// The result has at most n + m - 1 atoms and is returned sorted.
common::Result<DiscreteMeasure> QuantileBarycenter1D(const DiscreteMeasure& mu0,
                                                     const DiscreteMeasure& mu1, double t);

/// Exact t-barycenter projected onto a fixed grid: atoms of the quantile
/// barycenter are split between their two neighbouring grid points in
/// proportion to proximity (mass- and mean-preserving for interior atoms;
/// atoms outside the grid range snap to the nearest end point). This is how
/// the repair pipeline represents `nu` on the shared interpolated support Q
/// (paper §IV-A2).
common::Result<DiscreteMeasure> QuantileBarycenterOnGrid(const DiscreteMeasure& mu0,
                                                         const DiscreteMeasure& mu1, double t,
                                                         const std::vector<double>& grid);

/// Exact N-measure W2 barycenter of sorted 1-D measures with barycentric
/// weights `lambdas` (non-negative, normalized internally):
///
///     F_nu^{-1} = sum_s lambda_s F_s^{-1}
///
/// — the closed form that makes the 1-D case special (weighted quantile
/// averaging; Agueh & Carlier 2011). Computed by a simultaneous sweep over
/// the common refinement of the input CDFs, so the result has at most
/// sum_s n_s atoms and is returned sorted. The two-measure case with
/// lambdas {1 - t, t} coincides with QuantileBarycenter1D(mu0, mu1, t).
common::Result<DiscreteMeasure> QuantileBarycenter1D(
    const std::vector<DiscreteMeasure>& measures, const std::vector<double>& lambdas);

/// N-measure barycenter projected onto a fixed grid (see the two-measure
/// QuantileBarycenterOnGrid).
common::Result<DiscreteMeasure> QuantileBarycenterOnGrid(
    const std::vector<DiscreteMeasure>& measures, const std::vector<double>& lambdas,
    const std::vector<double>& grid);

/// Options for the general fixed-support entropic barycenter.
struct BregmanBarycenterOptions {
  double epsilon = 0.05;
  size_t max_iterations = 2000;
  double tolerance = 1e-8;
};

/// Fixed-support Wasserstein barycenter of N weighted measures sharing the
/// support `grid`, by iterative Bregman projections (Benamou et al. 2015).
/// `lambdas` are the barycentric weights (non-negative, summing to one after
/// normalization); the two-measure case with lambdas {1-t, t} matches
/// `QuantileBarycenterOnGrid` up to entropic smoothing. Provided both as a
/// general capability and as an independent cross-check of the quantile
/// method.
common::Result<DiscreteMeasure> BregmanBarycenter(
    const std::vector<DiscreteMeasure>& measures, const std::vector<double>& lambdas,
    const std::vector<double>& grid, const BregmanBarycenterOptions& options = {});

}  // namespace otfair::ot

#endif  // OTFAIR_OT_BARYCENTER_H_
