#include "ot/geodesic.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace otfair::ot {

using common::Result;
using common::Status;

Result<DiscreteMeasure> DisplacementInterpolation(const std::vector<PlanEntry>& entries,
                                                  const std::vector<double>& xs,
                                                  const std::vector<double>& ys, double t) {
  if (!(t >= 0.0 && t <= 1.0)) return Status::InvalidArgument("t must lie in [0, 1]");
  if (entries.empty()) return Status::InvalidArgument("empty plan");
  std::vector<double> support;
  std::vector<double> weights;
  support.reserve(entries.size());
  weights.reserve(entries.size());
  for (const PlanEntry& e : entries) {
    if (e.i >= xs.size() || e.j >= ys.size())
      return Status::InvalidArgument("plan entry out of support range");
    support.push_back((1.0 - t) * xs[e.i] + t * ys[e.j]);
    weights.push_back(e.mass);
  }
  auto measure = DiscreteMeasure::Create(std::move(support), std::move(weights));
  if (!measure.ok()) return measure.status();
  return measure->SortedBySupport();
}

Result<DiscreteMeasure> ProjectToGrid(const DiscreteMeasure& measure,
                                      const std::vector<double>& grid) {
  if (grid.empty()) return Status::InvalidArgument("empty grid");
  for (size_t i = 1; i < grid.size(); ++i) {
    if (!(grid[i] > grid[i - 1]))
      return Status::InvalidArgument("grid must be strictly increasing");
  }

  std::vector<double> weights(grid.size(), 0.0);
  for (size_t a = 0; a < measure.size(); ++a) {
    const double x = measure.support_at(a);
    const double m = measure.weight_at(a);
    if (m <= 0.0) continue;
    if (x <= grid.front()) {
      weights.front() += m;
      continue;
    }
    if (x >= grid.back()) {
      weights.back() += m;
      continue;
    }
    // Locate the cell [grid[j], grid[j+1]) containing x.
    const auto it = std::upper_bound(grid.begin(), grid.end(), x);
    const size_t hi = static_cast<size_t>(it - grid.begin());
    const size_t lo = hi - 1;
    const double frac = (x - grid[lo]) / (grid[hi] - grid[lo]);
    weights[lo] += m * (1.0 - frac);
    weights[hi] += m * frac;
  }
  return DiscreteMeasure::Create(grid, std::move(weights));
}

}  // namespace otfair::ot
