#include "ot/plan.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/simd.h"
#include "common/status.h"

namespace otfair::ot {

using common::Matrix;
using common::Result;
using common::Status;

std::vector<PlanEntry> TransportPlan::ToSparse(double threshold) const {
  // Two passes: count then fill, so the output vector is allocated once
  // instead of doubling its way up through push_back growth.
  size_t count = 0;
  for (size_t i = 0; i < coupling.rows(); ++i) {
    const double* row = coupling.row(i);
    for (size_t j = 0; j < coupling.cols(); ++j) {
      if (row[j] > threshold) ++count;
    }
  }
  std::vector<PlanEntry> out;
  out.reserve(count);
  for (size_t i = 0; i < coupling.rows(); ++i) {
    const double* row = coupling.row(i);
    for (size_t j = 0; j < coupling.cols(); ++j) {
      if (row[j] > threshold) out.push_back({i, j, row[j]});
    }
  }
  return out;
}

double TransportPlan::MarginalError(const std::vector<double>& a,
                                    const std::vector<double>& b) const {
  OTFAIR_CHECK_EQ(coupling.rows(), a.size());
  OTFAIR_CHECK_EQ(coupling.cols(), b.size());
  double err = 0.0;
  std::vector<double> row_sums = coupling.RowSums();
  std::vector<double> col_sums = coupling.ColSums();
  for (size_t i = 0; i < a.size(); ++i) err = std::max(err, std::fabs(row_sums[i] - a[i]));
  for (size_t j = 0; j < b.size(); ++j) err = std::max(err, std::fabs(col_sums[j] - b[j]));
  return err;
}

SparsePlan SparsePlan::FromEntries(std::vector<PlanEntry> entries, size_t rows, size_t cols) {
  for (const PlanEntry& e : entries) {
    OTFAIR_CHECK(e.i < rows && e.j < cols);
  }
  const auto row_major = [](const PlanEntry& a, const PlanEntry& b) {
    return a.i != b.i ? a.i < b.i : a.j < b.j;
  };
  // The monotone staircase (and every built-in path) already emits
  // row-major order; detect that in O(nnz) and skip the sort.
  if (!std::is_sorted(entries.begin(), entries.end(), row_major))
    std::sort(entries.begin(), entries.end(), row_major);

  SparsePlan plan;
  plan.rows_ = rows;
  plan.cols_ = cols;
  plan.row_offsets_.assign(rows + 1, 0);
  plan.col_indices_.reserve(entries.size());
  plan.values_.reserve(entries.size());
  size_t last_row = rows;  // sentinel: no entry emitted yet
  for (const PlanEntry& e : entries) {
    if (last_row == e.i && plan.col_indices_.back() == static_cast<uint32_t>(e.j)) {
      // Duplicate (i, j) cell (adjacent after the sort): merge the mass.
      plan.values_.back() += e.mass;
      continue;
    }
    plan.col_indices_.push_back(static_cast<uint32_t>(e.j));
    plan.values_.push_back(e.mass);
    ++plan.row_offsets_[e.i + 1];
    last_row = e.i;
  }
  for (size_t r = 0; r < rows; ++r) plan.row_offsets_[r + 1] += plan.row_offsets_[r];
  return plan;
}

SparsePlan SparsePlan::FromDense(const Matrix& dense, double threshold) {
  SparsePlan plan;
  plan.rows_ = dense.rows();
  plan.cols_ = dense.cols();
  plan.row_offsets_.assign(plan.rows_ + 1, 0);
  size_t count = 0;
  for (size_t r = 0; r < plan.rows_; ++r) {
    const double* row = dense.row(r);
    for (size_t c = 0; c < plan.cols_; ++c) {
      if (row[c] > threshold) ++count;
    }
  }
  plan.col_indices_.reserve(count);
  plan.values_.reserve(count);
  for (size_t r = 0; r < plan.rows_; ++r) {
    const double* row = dense.row(r);
    for (size_t c = 0; c < plan.cols_; ++c) {
      if (row[c] > threshold) {
        plan.col_indices_.push_back(static_cast<uint32_t>(c));
        plan.values_.push_back(row[c]);
      }
    }
    plan.row_offsets_[r + 1] = plan.col_indices_.size();
  }
  return plan;
}

Result<SparsePlan> SparsePlan::FromCsr(size_t rows, size_t cols,
                                       std::vector<size_t> row_offsets,
                                       std::vector<uint32_t> col_indices,
                                       std::vector<double> values) {
  if (rows == 0 || cols == 0) {
    if (rows != 0 || cols != 0 || !col_indices.empty() || !values.empty())
      return Status::InvalidArgument("degenerate CSR shape with entries");
    return SparsePlan();
  }
  if (row_offsets.size() != rows + 1)
    return Status::InvalidArgument("CSR row offsets must have rows + 1 entries");
  if (row_offsets.front() != 0 || row_offsets.back() != col_indices.size() ||
      col_indices.size() != values.size())
    return Status::InvalidArgument("CSR offsets inconsistent with entry arrays");
  bool sorted = true;
  for (size_t r = 0; r < rows; ++r) {
    // Bound every offset before the element loop below indexes with it:
    // a corrupt interior offset must produce a clean error, not an
    // out-of-bounds read.
    if (row_offsets[r] > row_offsets[r + 1] || row_offsets[r + 1] > col_indices.size())
      return Status::InvalidArgument("CSR row offsets must be non-decreasing and within nnz");
    for (size_t t = row_offsets[r]; t < row_offsets[r + 1]; ++t) {
      if (col_indices[t] >= cols) return Status::InvalidArgument("CSR column index out of range");
      if (!(values[t] >= 0.0) || !std::isfinite(values[t]))
        return Status::InvalidArgument("CSR plan values must be non-negative and finite");
      if (t > row_offsets[r] && col_indices[t] <= col_indices[t - 1]) sorted = false;
    }
  }
  SparsePlan plan;
  plan.rows_ = rows;
  plan.cols_ = cols;
  plan.columns_sorted_ = sorted;
  plan.row_offsets_ = std::move(row_offsets);
  plan.col_indices_ = std::move(col_indices);
  plan.values_ = std::move(values);
  return plan;
}

Matrix SparsePlan::ToDense() const {
  Matrix dense(rows_, cols_);
  for (size_t r = 0; r < rows_; ++r) {
    double* out = dense.row(r);
    for (size_t t = row_offsets_[r]; t < row_offsets_[r + 1]; ++t)
      out[col_indices_[t]] += values_[t];
  }
  return dense;
}

SparsePlan::RowView SparsePlan::Row(size_t r) const {
  OTFAIR_DCHECK(r < rows_);
  const size_t begin = row_offsets_[r];
  return RowView{col_indices_.data() + begin, values_.data() + begin,
                 row_offsets_[r + 1] - begin};
}

double SparsePlan::RowSum(size_t r) const {
  OTFAIR_DCHECK(r < rows_);
  const size_t begin = row_offsets_[r];
  return common::simd::Sum(values_.data() + begin, row_offsets_[r + 1] - begin);
}

std::vector<double> SparsePlan::RowSums() const {
  std::vector<double> sums(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) sums[r] = RowSum(r);
  return sums;
}

std::vector<double> SparsePlan::ColSums() const {
  std::vector<double> sums(cols_, 0.0);
  if (columns_sorted_) {
    // Columns were bounds-checked at construction and are strictly
    // increasing per row — a single scatter pass with no per-entry
    // validation.
    const size_t count = values_.size();
    for (size_t t = 0; t < count; ++t) sums[col_indices_[t]] += values_[t];
  } else {
    for (size_t t = 0; t < values_.size(); ++t) {
      OTFAIR_CHECK_LT(col_indices_[t], cols_);
      sums[col_indices_[t]] += values_[t];
    }
  }
  return sums;
}

double SparsePlan::Sum() const {
  // The SIMD reduction reassociates across lanes; every caller compares
  // the total against 1 (or a mass floor) under a tolerance.
  return common::simd::Sum(values_.data(), values_.size());
}

SparsePlan SparsePlan::Transposed() const {
  SparsePlan t;
  t.rows_ = cols_;
  t.cols_ = rows_;
  t.row_offsets_.assign(cols_ + 1, 0);
  t.col_indices_.resize(values_.size());
  t.values_.resize(values_.size());
  for (uint32_t c : col_indices_) ++t.row_offsets_[c + 1];
  for (size_t r = 0; r < cols_; ++r) t.row_offsets_[r + 1] += t.row_offsets_[r];
  std::vector<size_t> cursor(t.row_offsets_.begin(), t.row_offsets_.end() - 1);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t i = row_offsets_[r]; i < row_offsets_[r + 1]; ++i) {
      const size_t slot = cursor[col_indices_[i]]++;
      t.col_indices_[slot] = static_cast<uint32_t>(r);
      t.values_[slot] = values_[i];
    }
  }
  // Row-major traversal fills each transposed row in increasing source-row
  // order, so when this plan's rows hold strictly increasing (hence
  // unique) columns, the transposed rows do too. An unsorted source may
  // carry duplicate columns, which transpose into duplicate entries —
  // propagate the flag rather than asserting sortedness.
  t.columns_sorted_ = columns_sorted_;
  return t;
}

double SparsePlan::Cost(const Matrix& cost) const {
  OTFAIR_CHECK(cost.rows() == rows_ && cost.cols() == cols_);
  double total = 0.0;
  for (size_t r = 0; r < rows_; ++r) {
    const double* crow = cost.row(r);
    for (size_t t = row_offsets_[r]; t < row_offsets_[r + 1]; ++t)
      total += values_[t] * crow[col_indices_[t]];
  }
  return total;
}

double SparsePlan::MaxAbsDiff(const SparsePlan& other) const {
  OTFAIR_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  double best = 0.0;
  if (columns_sorted_ && other.columns_sorted_) {
    // Merge walk over the two sorted supports of each row.
    for (size_t r = 0; r < rows_; ++r) {
      const RowView a = Row(r);
      const RowView b = other.Row(r);
      size_t i = 0;
      size_t j = 0;
      while (i < a.nnz || j < b.nnz) {
        if (j >= b.nnz || (i < a.nnz && a.cols[i] < b.cols[j])) {
          best = std::max(best, std::fabs(a.values[i]));
          ++i;
        } else if (i >= a.nnz || b.cols[j] < a.cols[i]) {
          best = std::max(best, std::fabs(b.values[j]));
          ++j;
        } else {
          best = std::max(best, std::fabs(a.values[i] - b.values[j]));
          ++i;
          ++j;
        }
      }
    }
    return best;
  }
  return ToDense().MaxAbsDiff(other.ToDense());
}

size_t SparsePlan::MemoryBytes() const {
  return row_offsets_.capacity() * sizeof(size_t) +
         col_indices_.capacity() * sizeof(uint32_t) + values_.capacity() * sizeof(double);
}

SparsePlan TruncateToSparse(const Matrix& dense, double rel_threshold) {
  if (!(rel_threshold > 0.0)) return SparsePlan::FromDense(dense, 0.0);
  const size_t n = dense.rows();
  const size_t m = dense.cols();
  // Pass 1: per-row mass, truncation threshold, and kept-entry count.
  std::vector<double> row_mass(n, 0.0);
  std::vector<double> row_tau(n, 0.0);
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    const double* row = dense.row(i);
    double mass = 0.0;
    double peak = 0.0;
    for (size_t j = 0; j < m; ++j) {
      mass += row[j];
      if (row[j] > peak) peak = row[j];
    }
    row_mass[i] = mass;
    // Per-row budget: dropping everything below tau loses at most
    // rel_threshold * row_mass, so the refold's column-marginal
    // perturbation is bounded by rel_threshold * total mass. The row's
    // own peak always survives (tau <= peak), so massive rows never
    // empty out.
    double tau = rel_threshold * mass / static_cast<double>(m);
    if (tau > peak) tau = peak;
    row_tau[i] = tau;
    for (size_t j = 0; j < m; ++j) {
      if (row[j] > 0.0 && row[j] >= tau) ++count;
    }
  }
  std::vector<PlanEntry> entries;
  entries.reserve(count);
  // Pass 2: extract survivors and fold each row's dropped mass back
  // proportionally, keeping the row marginal exact (to roundoff).
  for (size_t i = 0; i < n; ++i) {
    const double* row = dense.row(i);
    const size_t first = entries.size();
    double kept = 0.0;
    for (size_t j = 0; j < m; ++j) {
      if (row[j] > 0.0 && row[j] >= row_tau[i]) {
        entries.push_back({i, j, row[j]});
        kept += row[j];
      }
    }
    if (kept > 0.0 && kept != row_mass[i]) {
      const double refold = row_mass[i] / kept;
      for (size_t t = first; t < entries.size(); ++t) entries[t].mass *= refold;
    }
  }
  return SparsePlan::FromEntries(std::move(entries), n, m);
}

Matrix SparseToDense(const std::vector<PlanEntry>& entries, size_t n, size_t m) {
  Matrix dense(n, m);
  for (const PlanEntry& e : entries) {
    OTFAIR_CHECK(e.i < n && e.j < m);
    dense(e.i, e.j) += e.mass;
  }
  return dense;
}

double SparsePlanCost(const std::vector<PlanEntry>& entries, const Matrix& cost) {
  double total = 0.0;
  for (const PlanEntry& e : entries) total += e.mass * cost(e.i, e.j);
  return total;
}

}  // namespace otfair::ot
