#include "ot/plan.h"

#include <cmath>

#include "common/check.h"

namespace otfair::ot {

std::vector<PlanEntry> TransportPlan::ToSparse(double threshold) const {
  std::vector<PlanEntry> out;
  for (size_t i = 0; i < coupling.rows(); ++i) {
    const double* row = coupling.row(i);
    for (size_t j = 0; j < coupling.cols(); ++j) {
      if (row[j] > threshold) out.push_back({i, j, row[j]});
    }
  }
  return out;
}

double TransportPlan::MarginalError(const std::vector<double>& a,
                                    const std::vector<double>& b) const {
  OTFAIR_CHECK_EQ(coupling.rows(), a.size());
  OTFAIR_CHECK_EQ(coupling.cols(), b.size());
  double err = 0.0;
  std::vector<double> row_sums = coupling.RowSums();
  std::vector<double> col_sums = coupling.ColSums();
  for (size_t i = 0; i < a.size(); ++i) err = std::max(err, std::fabs(row_sums[i] - a[i]));
  for (size_t j = 0; j < b.size(); ++j) err = std::max(err, std::fabs(col_sums[j] - b[j]));
  return err;
}

common::Matrix SparseToDense(const std::vector<PlanEntry>& entries, size_t n, size_t m) {
  common::Matrix dense(n, m);
  for (const PlanEntry& e : entries) {
    OTFAIR_CHECK(e.i < n && e.j < m);
    dense(e.i, e.j) += e.mass;
  }
  return dense;
}

double SparsePlanCost(const std::vector<PlanEntry>& entries, const common::Matrix& cost) {
  double total = 0.0;
  for (const PlanEntry& e : entries) total += e.mass * cost(e.i, e.j);
  return total;
}

}  // namespace otfair::ot
