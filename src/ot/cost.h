#ifndef OTFAIR_OT_COST_H_
#define OTFAIR_OT_COST_H_

#include <vector>

#include "common/matrix.h"

namespace otfair::ot {

/// Ground-cost builders for Kantorovich OT problems (paper Eq. 5/13).
///
/// The canonical choice in the paper is the squared Euclidean cost
/// `C(x, y) = |x - y|^2` (so that the optimal objective is W2^2 and
/// Brenier's theorem applies in the continuum limit); `LpCost` generalizes
/// to arbitrary integer p >= 1 with `C = |x - y|^p`.

/// C(i, j) = |x_i - y_j|^2.
common::Matrix SquaredEuclideanCost(const std::vector<double>& xs,
                                    const std::vector<double>& ys);

/// C(i, j) = |x_i - y_j|^p, p >= 1.
common::Matrix LpCost(const std::vector<double>& xs, const std::vector<double>& ys, int p);

}  // namespace otfair::ot

#endif  // OTFAIR_OT_COST_H_
