#include "ot/sinkhorn.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/status.h"

namespace otfair::ot {

using common::Matrix;
using common::Result;
using common::Status;

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// Worst marginal violation of the current plan.
double MarginalViolation(const Matrix& plan, const std::vector<double>& a,
                         const std::vector<double>& b) {
  double err = 0.0;
  std::vector<double> rows = plan.RowSums();
  std::vector<double> cols = plan.ColSums();
  for (size_t i = 0; i < a.size(); ++i) err = std::max(err, std::fabs(rows[i] - a[i]));
  for (size_t j = 0; j < b.size(); ++j) err = std::max(err, std::fabs(cols[j] - b[j]));
  return err;
}

/// log(sum_k exp(v_k)) computed stably; empty/all -inf input gives -inf.
double LogSumExp(const std::vector<double>& v) {
  double hi = kNegInf;
  for (double x : v) hi = std::max(hi, x);
  if (hi == kNegInf) return kNegInf;
  double acc = 0.0;
  for (double x : v) acc += std::exp(x - hi);
  return hi + std::log(acc);
}

Result<SinkhornResult> SolveStandard(const std::vector<double>& a, const std::vector<double>& b,
                                     const Matrix& cost, const SinkhornOptions& opt) {
  const size_t n = a.size();
  const size_t m = b.size();
  // Gibbs kernel K = exp(-C / eps).
  Matrix kernel(n, m);
  for (size_t i = 0; i < n; ++i) {
    const double* crow = cost.row(i);
    double* krow = kernel.row(i);
    for (size_t j = 0; j < m; ++j) krow[j] = std::exp(-crow[j] / opt.epsilon);
  }

  std::vector<double> u(n, 1.0);
  std::vector<double> v(m, 1.0);
  SinkhornResult out;
  Matrix plan(n, m);

  auto rebuild_plan = [&]() {
    for (size_t i = 0; i < n; ++i) {
      const double* krow = kernel.row(i);
      double* prow = plan.row(i);
      for (size_t j = 0; j < m; ++j) prow[j] = u[i] * krow[j] * v[j];
    }
  };

  for (size_t iter = 1; iter <= opt.max_iterations; ++iter) {
    // u = a ./ (K v)
    for (size_t i = 0; i < n; ++i) {
      const double* krow = kernel.row(i);
      double denom = 0.0;
      for (size_t j = 0; j < m; ++j) denom += krow[j] * v[j];
      u[i] = (denom > 0.0) ? a[i] / denom : 0.0;
      if (std::isnan(u[i]))
        return Status::NotConverged("sinkhorn diverged (NaN scaling); use log_domain or larger epsilon");
    }
    // v = b ./ (K' u)
    for (size_t j = 0; j < m; ++j) {
      double denom = 0.0;
      for (size_t i = 0; i < n; ++i) denom += kernel(i, j) * u[i];
      v[j] = (denom > 0.0) ? b[j] / denom : 0.0;
      if (std::isnan(v[j]))
        return Status::NotConverged("sinkhorn diverged (NaN scaling); use log_domain or larger epsilon");
    }
    out.iterations = iter;
    if (iter % 10 == 0 || iter == opt.max_iterations) {
      rebuild_plan();
      if (MarginalViolation(plan, a, b) < opt.tolerance) {
        out.converged = true;
        break;
      }
    }
  }
  rebuild_plan();
  if (!out.converged) out.converged = MarginalViolation(plan, a, b) < opt.tolerance;
  out.plan.cost = plan.Dot(cost);
  out.plan.coupling = std::move(plan);
  return out;
}

Result<SinkhornResult> SolveLogDomain(const std::vector<double>& a, const std::vector<double>& b,
                                      const Matrix& cost, const SinkhornOptions& opt) {
  const size_t n = a.size();
  const size_t m = b.size();
  std::vector<double> log_a(n);
  std::vector<double> log_b(m);
  for (size_t i = 0; i < n; ++i) log_a[i] = a[i] > 0.0 ? std::log(a[i]) : kNegInf;
  for (size_t j = 0; j < m; ++j) log_b[j] = b[j] > 0.0 ? std::log(b[j]) : kNegInf;

  std::vector<double> f(n, 0.0);  // f = eps * log(u)
  std::vector<double> g(m, 0.0);  // g = eps * log(v)
  std::vector<double> scratch(std::max(n, m));

  SinkhornResult out;
  Matrix plan(n, m);
  auto rebuild_plan = [&]() {
    for (size_t i = 0; i < n; ++i) {
      const double* crow = cost.row(i);
      double* prow = plan.row(i);
      for (size_t j = 0; j < m; ++j) {
        const double e = (f[i] + g[j] - crow[j]) / opt.epsilon;
        prow[j] = (e == kNegInf) ? 0.0 : std::exp(e);
      }
    }
  };

  for (size_t iter = 1; iter <= opt.max_iterations; ++iter) {
    // f_i = eps log a_i - eps LSE_j((g_j - C_ij)/eps)
    for (size_t i = 0; i < n; ++i) {
      if (log_a[i] == kNegInf) {
        f[i] = kNegInf;
        continue;
      }
      const double* crow = cost.row(i);
      scratch.resize(m);
      for (size_t j = 0; j < m; ++j) scratch[j] = (g[j] - crow[j]) / opt.epsilon;
      f[i] = opt.epsilon * (log_a[i] - LogSumExp(scratch));
    }
    // g_j = eps log b_j - eps LSE_i((f_i - C_ij)/eps)
    for (size_t j = 0; j < m; ++j) {
      if (log_b[j] == kNegInf) {
        g[j] = kNegInf;
        continue;
      }
      scratch.resize(n);
      for (size_t i = 0; i < n; ++i) scratch[i] = (f[i] - cost(i, j)) / opt.epsilon;
      g[j] = opt.epsilon * (log_b[j] - LogSumExp(scratch));
    }
    out.iterations = iter;
    if (iter % 10 == 0 || iter == opt.max_iterations) {
      rebuild_plan();
      if (MarginalViolation(plan, a, b) < opt.tolerance) {
        out.converged = true;
        break;
      }
    }
  }
  rebuild_plan();
  if (!out.converged) out.converged = MarginalViolation(plan, a, b) < opt.tolerance;
  out.plan.cost = plan.Dot(cost);
  out.plan.coupling = std::move(plan);
  return out;
}

}  // namespace

Result<SinkhornResult> SolveSinkhorn(const std::vector<double>& a, const std::vector<double>& b,
                                     const Matrix& cost, const SinkhornOptions& options) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0 || m == 0) return Status::InvalidArgument("empty marginal");
  if (cost.rows() != n || cost.cols() != m)
    return Status::InvalidArgument("cost matrix shape mismatch");
  if (!(options.epsilon > 0.0)) return Status::InvalidArgument("epsilon must be positive");

  double sum_a = 0.0;
  double sum_b = 0.0;
  for (double w : a) {
    if (!(w >= 0.0)) return Status::InvalidArgument("negative source weight");
    sum_a += w;
  }
  for (double w : b) {
    if (!(w >= 0.0)) return Status::InvalidArgument("negative target weight");
    sum_b += w;
  }
  if (sum_a <= 0.0 || sum_b <= 0.0) return Status::InvalidArgument("marginals must carry mass");
  if (std::fabs(sum_a - sum_b) > 1e-9 * std::max(sum_a, sum_b))
    return Status::InvalidArgument("unbalanced problem: marginal totals differ");

  return options.log_domain ? SolveLogDomain(a, b, cost, options)
                            : SolveStandard(a, b, cost, options);
}

}  // namespace otfair::ot
