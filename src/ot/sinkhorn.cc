#include "ot/sinkhorn.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/parallel.h"
#include "common/simd.h"
#include "common/status.h"
#include "obs/trace.h"

namespace otfair::ot {

using common::Matrix;
using common::Result;
using common::Status;
using common::parallel::ParallelFor;

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// Below this many matrix elements a row update is microseconds of work
/// and the per-iteration pool handshake would dominate, so small solves
/// force the inline (threads=1) path; larger ones defer to the
/// process-wide thread count.
size_t RowUpdateThreads(size_t n, size_t m) { return n * m < 16384 ? 1 : 0; }

/// Both scaling iterations below are written cache-aware: the u/f update
/// streams rows of the kernel/cost, the v/g update streams rows of a
/// transposed copy kept alongside, so neither direction strides
/// column-wise through row-major storage. The full plan matrix is only
/// materialized when convergence is plausible, not every few iterations.
///
/// Two-tier convergence check. Cheap tier, every iteration: after the u
/// (resp. f) update the half-updated plan's row marginals match `a` by
/// construction, so its worst violation is carried entirely by the
/// columns,
///     standard:  err_j = | v_j * (K^T u)_j - b_j |
///     log:       err_j = | exp(g_j / eps + LSE_i((f_i - C_ij)/eps)) - b_j |
/// and (K^T u)_j / the LSE are exactly the quantities the v/g update
/// computes anyway, so this tier is free. Certifying tier: only when the
/// cheap violation clears tolerance (or the iteration cap is hit) is the
/// actual plan rebuilt and measured — `converged == true` always refers
/// to the returned plan, same contract as before the rewrite.

/// Worst marginal violation of the plan itself (the certifying check).
/// Both the marginal sums and the |sums - target| reductions run through
/// the SIMD layer; this feeds a tolerance comparison, so the lane
/// reassociation in the sums is harmless.
double MarginalViolation(const Matrix& plan, const std::vector<double>& a,
                         const std::vector<double>& b) {
  const std::vector<double> rows = plan.RowSums();
  const std::vector<double> cols = plan.ColSums();
  return std::max(common::simd::MaxAbsDiff(rows.data(), a.data(), a.size()),
                  common::simd::MaxAbsDiff(cols.data(), b.data(), b.size()));
}

Result<SinkhornResult> SolveStandard(const std::vector<double>& a, const std::vector<double>& b,
                                     const Matrix& cost, const SinkhornOptions& opt) {
  const size_t n = a.size();
  const size_t m = b.size();
  const size_t row_threads = RowUpdateThreads(n, m);
  // Gibbs kernel K = exp(-C / eps), plus its transpose for the v update.
  Matrix kernel(n, m);
  Matrix kernel_t(m, n);
  ParallelFor(0, n, [&](size_t i) {
    const double* crow = cost.row(i);
    double* krow = kernel.row(i);
    for (size_t j = 0; j < m; ++j) krow[j] = std::exp(-crow[j] / opt.epsilon);
  }, row_threads);
  ParallelFor(0, m, [&](size_t j) {
    double* trow = kernel_t.row(j);
    for (size_t i = 0; i < n; ++i) trow[i] = kernel(i, j);
  }, row_threads);

  std::vector<double> u(n, 1.0);
  std::vector<double> v(m, 1.0);
  std::vector<double> col_err(m, 0.0);
  SinkhornResult out;
  Matrix plan(n, m);
  bool plan_current = false;
  auto rebuild_plan = [&] {
    ParallelFor(0, n, [&](size_t i) {
      // prow = u_i * krow ∘ v, element-wise with scalar evaluation order
      // (no FMA contraction), so the rebuilt plan is ISA-independent.
      common::simd::ScaledMul(plan.row(i), kernel.row(i), v.data(), u[i], m);
    }, row_threads);
  };

  for (size_t iter = 1; iter <= opt.max_iterations; ++iter) {
    OTFAIR_TRACE_SPAN("sinkhorn_iter");
    // u = a ./ (K v) — the row-kernel dot is the standard iteration's
    // inner loop and vectorizes to a straight fused multiply-add chain.
    ParallelFor(0, n, [&](size_t i) {
      const double denom = common::simd::Dot(kernel.row(i), v.data(), m);
      u[i] = (denom > 0.0) ? a[i] / denom : 0.0;
    }, row_threads);
    for (size_t i = 0; i < n; ++i) {
      if (std::isnan(u[i]))
        return Status::NotConverged("sinkhorn diverged (NaN scaling); use log_domain or larger epsilon");
    }
    // v = b ./ (K' u); col_err records the pre-update column violation.
    ParallelFor(0, m, [&](size_t j) {
      const double denom = common::simd::Dot(kernel_t.row(j), u.data(), n);
      col_err[j] = std::fabs(v[j] * denom - b[j]);
      v[j] = (denom > 0.0) ? b[j] / denom : 0.0;
    }, row_threads);
    for (size_t j = 0; j < m; ++j) {
      if (std::isnan(v[j]))
        return Status::NotConverged("sinkhorn diverged (NaN scaling); use log_domain or larger epsilon");
    }
    out.iterations = iter;
    const double err = common::simd::Max(col_err.data(), m);
    if (err < opt.tolerance || iter == opt.max_iterations) {
      // Candidate convergence: certify on the plan actually returned.
      rebuild_plan();
      plan_current = true;
      if (MarginalViolation(plan, a, b) < opt.tolerance) {
        out.converged = true;
        break;
      }
      if (iter < opt.max_iterations) plan_current = false;
    }
  }

  if (!plan_current) rebuild_plan();
  out.plan.cost = plan.Dot(cost);
  out.plan.coupling = std::move(plan);
  return out;
}

Result<SinkhornResult> SolveLogDomain(const std::vector<double>& a, const std::vector<double>& b,
                                      const Matrix& cost, const SinkhornOptions& opt) {
  const size_t n = a.size();
  const size_t m = b.size();
  const size_t row_threads = RowUpdateThreads(n, m);
  const double inv_eps = 1.0 / opt.epsilon;
  // Pre-scaled cost C/eps (plus its transpose for the g update): the
  // inner LSE loops then run on plain subtractions.
  Matrix cost_scaled(n, m);
  Matrix cost_scaled_t(m, n);
  ParallelFor(0, n, [&](size_t i) {
    const double* crow = cost.row(i);
    double* srow = cost_scaled.row(i);
    for (size_t j = 0; j < m; ++j) srow[j] = crow[j] * inv_eps;
  }, row_threads);
  ParallelFor(0, m, [&](size_t j) {
    double* trow = cost_scaled_t.row(j);
    for (size_t i = 0; i < n; ++i) trow[i] = cost_scaled(i, j);
  }, row_threads);
  std::vector<double> log_a(n);
  std::vector<double> log_b(m);
  for (size_t i = 0; i < n; ++i) log_a[i] = a[i] > 0.0 ? std::log(a[i]) : kNegInf;
  for (size_t j = 0; j < m; ++j) log_b[j] = b[j] > 0.0 ? std::log(b[j]) : kNegInf;

  // Scaled potentials: fs = f/eps, gs = g/eps (f = eps log u, g = eps
  // log v). Keeping the iteration entirely in the scaled domain drops
  // two multiplies per matrix element per iteration.
  std::vector<double> fs(n, 0.0);
  std::vector<double> gs(m, 0.0);
  std::vector<double> col_err(m, 0.0);
  SinkhornResult out;
  Matrix plan(n, m);
  bool plan_current = false;
  auto rebuild_plan = [&] {
    ParallelFor(0, n, [&](size_t i) {
      const double* srow = cost_scaled.row(i);
      double* prow = plan.row(i);
      const double fsi = fs[i];
      for (size_t j = 0; j < m; ++j) {
        const double e = fsi + gs[j] - srow[j];
        prow[j] = (e == kNegInf) ? 0.0 : std::exp(e);
      }
    }, row_threads);
  };

  for (size_t iter = 1; iter <= opt.max_iterations; ++iter) {
    OTFAIR_TRACE_SPAN("sinkhorn_iter");
    // fs_i = log a_i - LSE_j(gs_j - C_ij/eps). The fused two-pass LSE
    // (max, then exp-sum, no scratch buffer) lives in the SIMD layer:
    // the AVX2 table runs both passes 4 lanes wide with a vectorized exp.
    ParallelFor(0, n, [&](size_t i) {
      if (log_a[i] == kNegInf) {
        fs[i] = kNegInf;
        return;
      }
      fs[i] = log_a[i] - common::simd::LseDiff(gs.data(), cost_scaled.row(i), m);
    }, row_threads);
    // gs_j = log b_j - LSE_i(fs_i - C_ij/eps); col_err records the
    // pre-update column violation exp(gs_j + LSE) vs b_j.
    ParallelFor(0, m, [&](size_t j) {
      if (log_b[j] == kNegInf) {
        // Zero-mass column: gs pins to -inf, its plan column is all
        // zeros, and the certifying check owns the corner cases — skip
        // the O(n) LSE entirely.
        gs[j] = kNegInf;
        col_err[j] = 0.0;
        return;
      }
      const double lse = common::simd::LseDiff(fs.data(), cost_scaled_t.row(j), n);
      const double log_col = gs[j] == kNegInf ? kNegInf : gs[j] + lse;
      col_err[j] = std::fabs((log_col == kNegInf ? 0.0 : std::exp(log_col)) - b[j]);
      gs[j] = log_b[j] - lse;
    }, row_threads);
    out.iterations = iter;
    const double err = common::simd::Max(col_err.data(), m);
    if (err < opt.tolerance || iter == opt.max_iterations) {
      // Candidate convergence: certify on the plan actually returned.
      rebuild_plan();
      plan_current = true;
      if (MarginalViolation(plan, a, b) < opt.tolerance) {
        out.converged = true;
        break;
      }
      if (iter < opt.max_iterations) plan_current = false;
    }
  }

  if (!plan_current) rebuild_plan();
  out.plan.cost = plan.Dot(cost);
  out.plan.coupling = std::move(plan);
  return out;
}

}  // namespace

Result<SinkhornResult> SolveSinkhorn(const std::vector<double>& a, const std::vector<double>& b,
                                     const Matrix& cost, const SinkhornOptions& options) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0 || m == 0) return Status::InvalidArgument("empty marginal");
  if (cost.rows() != n || cost.cols() != m)
    return Status::InvalidArgument("cost matrix shape mismatch");
  if (!(options.epsilon > 0.0)) return Status::InvalidArgument("epsilon must be positive");

  double sum_a = 0.0;
  double sum_b = 0.0;
  for (double w : a) {
    if (!(w >= 0.0)) return Status::InvalidArgument("negative source weight");
    sum_a += w;
  }
  for (double w : b) {
    if (!(w >= 0.0)) return Status::InvalidArgument("negative target weight");
    sum_b += w;
  }
  if (sum_a <= 0.0 || sum_b <= 0.0) return Status::InvalidArgument("marginals must carry mass");
  if (std::fabs(sum_a - sum_b) > 1e-9 * std::max(sum_a, sum_b))
    return Status::InvalidArgument("unbalanced problem: marginal totals differ");

  return options.log_domain ? SolveLogDomain(a, b, cost, options)
                            : SolveStandard(a, b, cost, options);
}

}  // namespace otfair::ot
