#ifndef OTFAIR_OT_WASSERSTEIN_H_
#define OTFAIR_OT_WASSERSTEIN_H_

#include "common/result.h"
#include "ot/measure.h"

namespace otfair::ot {

/// p-Wasserstein distance between two discrete measures with explicit cost
/// construction and the exact solver (paper Eq. 6). Works for any p >= 1;
/// for 1-D measures `Wasserstein1D` (ot/monotone.h) computes the same value
/// in O(n log n) and the two are cross-checked in tests.
common::Result<double> WassersteinExact(const DiscreteMeasure& mu, const DiscreteMeasure& nu,
                                        int p = 2);

}  // namespace otfair::ot

#endif  // OTFAIR_OT_WASSERSTEIN_H_
