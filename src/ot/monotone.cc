#include "ot/monotone.h"

#include <cmath>

#include "common/status.h"

namespace otfair::ot {

using common::Result;
using common::Status;

Result<MonotoneCoupling> SolveMonotone1D(const DiscreteMeasure& mu, const DiscreteMeasure& nu) {
  if (mu.empty() || nu.empty()) return Status::InvalidArgument("empty measure");

  MonotoneCoupling out;
  out.sorted_source = mu.IsSorted() ? mu : mu.SortedBySupport();
  out.sorted_target = nu.IsSorted() ? nu : nu.SortedBySupport();

  const std::vector<double>& wa = out.sorted_source.weights();
  const std::vector<double>& wb = out.sorted_target.weights();
  const size_t n = wa.size();
  const size_t m = wb.size();
  out.entries.reserve(n + m);

  // March both pmfs in quantile order, peeling off the smaller remaining
  // mass at each step (north-west-corner rule).
  size_t i = 0;
  size_t j = 0;
  double ra = wa[0];
  double rb = wb[0];
  constexpr double kTol = 1e-15;
  while (i < n && j < m) {
    const double moved = std::min(ra, rb);
    if (moved > kTol) out.entries.push_back({i, j, moved});
    ra -= moved;
    rb -= moved;
    if (ra <= kTol) {
      ++i;
      if (i < n) ra = wa[i];
    }
    if (rb <= kTol) {
      ++j;
      if (j < m) rb = wb[j];
    }
  }
  return out;
}

Result<double> Wasserstein1D(const DiscreteMeasure& mu, const DiscreteMeasure& nu, int p) {
  if (p < 1) return Status::InvalidArgument("Wasserstein order p must be >= 1");
  auto coupling = SolveMonotone1D(mu, nu);
  if (!coupling.ok()) return coupling.status();
  const std::vector<double>& xs = coupling->sorted_source.support();
  const std::vector<double>& ys = coupling->sorted_target.support();
  double total = 0.0;
  for (const PlanEntry& e : coupling->entries) {
    const double d = std::fabs(xs[e.i] - ys[e.j]);
    total += e.mass * ((p == 1) ? d : (p == 2) ? d * d : std::pow(d, p));
  }
  // Short-circuit the final root for the common orders: W1 needs no root
  // and W2 takes sqrt, both markedly cheaper than a general pow.
  if (p == 1) return total;
  if (p == 2) return std::sqrt(total);
  return std::pow(total, 1.0 / static_cast<double>(p));
}

}  // namespace otfair::ot
