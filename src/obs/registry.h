#ifndef OTFAIR_OBS_REGISTRY_H_
#define OTFAIR_OBS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace otfair::obs {

/// Named-metric registry: subsystems register counters / gauges /
/// histograms (and scrape-time callbacks for labeled families) instead of
/// growing a hard-coded snapshot struct. Registration is mutex-guarded;
/// the returned instrument pointers are lock-free and stay valid for the
/// registry's lifetime.

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Monotonic counter. Increments are relaxed atomics: exact under
/// concurrency (fetch_add), no ordering guarantees with other metrics.
class Counter {
 public:
  void Add(uint64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time double value (bit-cast through an atomic word).
class Gauge {
 public:
  void Set(double v);
  double Value() const;

 private:
  std::atomic<uint64_t> bits_{0};
};

/// HdrHistogram-style log-linear histogram of microsecond values:
/// 328 slots — values 0..7 exact, then 8 sub-buckets per power of two up
/// to 2^44 µs. Records are lock-free; relative quantile error is bounded
/// by the 1/8 sub-bucket width (~6%).
class Histogram {
 public:
  static constexpr int kBuckets = 328;

  struct Snapshot {
    std::vector<uint64_t> counts;  // kBuckets entries
    uint64_t count = 0;
    double sum = 0.0;
    uint64_t max = 0;

    /// Nearest-rank quantile (q in [0,1]) as a representative bucket
    /// midpoint, 0 when empty.
    uint64_t QuantileUs(double q) const;
  };

  void Record(uint64_t us);
  Snapshot Read() const;

  /// counts/count/sum of `cur` minus `prev`; max carries `cur.max`
  /// (per-window max would need a resettable register — lifetime max is
  /// the honest value we have).
  static Snapshot Delta(const Snapshot& cur, const Snapshot& prev);

  static int BucketIndex(uint64_t us);
  /// Representative (midpoint) value for a bucket.
  static uint64_t BucketValueUs(int bucket);
  /// Inclusive upper edge of a bucket in µs (largest value mapping to it).
  static uint64_t BucketUpperEdgeUs(int bucket);

 private:
  std::atomic<uint64_t> counts_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_bits_{0};  // double, CAS-accumulated
  std::atomic<uint64_t> max_{0};
};

/// One sample from a callback family: optional pre-rendered label string
/// (Prometheus `key="value"` form, no braces) plus the value.
struct MetricSample {
  std::string labels;  // e.g. "u=\"0\",s=\"1\",k=\"0\"" or empty
  double value = 0.0;
};

using MetricCallback = std::function<std::vector<MetricSample>()>;

class Registry;

/// RAII registration of a callback family; unregisters on destruction.
/// The registry must outlive the handle.
class CallbackHandle {
 public:
  CallbackHandle() = default;
  CallbackHandle(CallbackHandle&& other) noexcept;
  CallbackHandle& operator=(CallbackHandle&& other) noexcept;
  ~CallbackHandle();

  CallbackHandle(const CallbackHandle&) = delete;
  CallbackHandle& operator=(const CallbackHandle&) = delete;

 private:
  friend class Registry;
  CallbackHandle(Registry* registry, uint64_t id) : registry_(registry), id_(id) {}
  Registry* registry_ = nullptr;
  uint64_t id_ = 0;
};

/// A rendered family for exposition: direct instruments carry one
/// unlabeled sample (or a histogram snapshot); callback families carry
/// whatever the callback returned at collect time.
struct MetricFamily {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  std::vector<MetricSample> samples;
  std::optional<Histogram::Snapshot> histogram;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Register instruments. Names must match
  /// [a-zA-Z_:][a-zA-Z0-9_:]* and be unique across the registry
  /// (instruments and callbacks share the namespace); violations return
  /// InvalidArgument. Returned pointers live as long as the registry.
  common::Result<Counter*> AddCounter(const std::string& name, const std::string& help);
  common::Result<Gauge*> AddGauge(const std::string& name, const std::string& help);
  common::Result<Histogram*> AddHistogram(const std::string& name, const std::string& help);

  /// Registers a scrape-time callback family (for labeled or computed
  /// values). The callback runs under the registry mutex during Collect();
  /// it must not re-enter the registry.
  common::Result<CallbackHandle> AddCallback(const std::string& name, const std::string& help,
                                             MetricKind kind, MetricCallback fn);

  /// Registered metric names (instruments + callbacks), sorted. Does not
  /// invoke callbacks.
  std::vector<std::string> Names() const;

  /// Reads every instrument and invokes every callback; families sorted
  /// by name.
  std::vector<MetricFamily> Collect() const;

 private:
  friend class CallbackHandle;
  void RemoveCallback(uint64_t id);

  struct Instrument {
    std::string help;
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Callback {
    std::string name;
    std::string help;
    MetricKind kind;
    MetricCallback fn;
  };

  common::Status CheckName(const std::string& name) const;  // callers hold mu_

  mutable std::mutex mu_;
  std::map<std::string, Instrument> instruments_;
  std::map<uint64_t, Callback> callbacks_;
  uint64_t next_callback_id_ = 1;
};

}  // namespace otfair::obs

#endif  // OTFAIR_OBS_REGISTRY_H_
