#ifndef OTFAIR_OBS_TRACE_H_
#define OTFAIR_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace otfair::obs {

/// Dapper-style span tracing with per-thread lock-free ring buffers and
/// Chrome trace-event export (loadable in Perfetto / chrome://tracing).
///
/// Instrumentation sites drop an `OTFAIR_TRACE_SPAN("name")` at the top of
/// a scope; the RAII guard records a completed span (begin/end timestamps)
/// into the calling thread's ring when tracing is enabled. When tracing is
/// DISABLED — the default — the guard compiles down to one relaxed atomic
/// load and a predictable branch, so instrumented hot paths (per Sinkhorn
/// iteration, per repair span, per admitted row) cost nothing measurable.
///
/// Span names must be string literals (static storage duration): the ring
/// stores the pointer, never copies the bytes.

/// One completed span as drained from a ring.
struct CompletedSpan {
  const char* name = nullptr;
  /// Small dense thread id assigned at ring registration (1, 2, ...).
  uint32_t tid = 0;
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
};

/// Monotonic nanoseconds since an arbitrary process-wide epoch.
uint64_t TraceNowNs();

/// Wait-free single-producer span ring with overwrite semantics: the
/// producing thread always wins — when the ring is full the OLDEST
/// unconsumed events are overwritten (and counted as dropped at the next
/// drain), never blocking or slowing the producer. Each slot carries a
/// seqlock-style generation counter so a concurrent drain detects and
/// discards torn slots instead of reading mixed generations.
///
/// One thread pushes; any number of drains may run, but they must be
/// externally serialized (the TraceCollector drains under its own mutex).
class TraceRing {
 public:
  static constexpr size_t kDefaultCapacity = 16384;

  /// `capacity` is rounded up to a power of two.
  explicit TraceRing(size_t capacity = kDefaultCapacity);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Records one completed span. Producer thread only; wait-free.
  void Push(const char* name, uint64_t start_ns, uint64_t end_ns) {
    const uint64_t h = head_.load(std::memory_order_relaxed);
    Slot& slot = slots_[h & mask_];
    // Odd = write in progress: a concurrent drain of this generation (or
    // of the one being overwritten) sees the marker and skips the slot.
    slot.seq.store(2 * h + 1, std::memory_order_release);
    slot.name.store(reinterpret_cast<uintptr_t>(name), std::memory_order_relaxed);
    slot.start_ns.store(start_ns, std::memory_order_relaxed);
    slot.end_ns.store(end_ns, std::memory_order_relaxed);
    // Even = published for generation h; release orders the payload.
    slot.seq.store(2 * (h + 1), std::memory_order_release);
    head_.store(h + 1, std::memory_order_release);
  }

  /// Appends every event published since the last drain to `out` (stamped
  /// with `tid`) and returns how many were lost to overwrite since then.
  /// Single consumer at a time.
  uint64_t Drain(uint32_t tid, std::vector<CompletedSpan>* out);

  size_t capacity() const { return mask_ + 1; }
  /// Total events ever pushed (for tests).
  uint64_t pushed() const { return head_.load(std::memory_order_acquire); }

 private:
  struct Slot {
    std::atomic<uint64_t> seq{0};
    std::atomic<uintptr_t> name{0};
    std::atomic<uint64_t> start_ns{0};
    std::atomic<uint64_t> end_ns{0};
  };

  size_t mask_;
  std::vector<Slot> slots_;
  std::atomic<uint64_t> head_{0};
  /// Consumer-side cursor; guarded by the (external) drain serialization.
  uint64_t consumed_ = 0;
};

/// Process-wide registry of every thread's ring plus the enable flag and
/// the accumulated drained events. All methods are thread-safe.
class TraceCollector {
 public:
  static TraceCollector& Global();

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Drains every registered ring into the internal event store and
  /// returns a copy of everything collected so far.
  std::vector<CompletedSpan> Drain();

  /// Events lost to ring overwrite across all drains so far.
  uint64_t dropped_total() const { return dropped_total_.load(std::memory_order_relaxed); }

  /// Drains, then writes every collected span as Chrome trace-event JSON
  /// ({"traceEvents":[{"ph":"X",...}]}), one complete ("X") event per
  /// span, timestamps in microseconds. The file loads in Perfetto.
  common::Status WriteChromeTrace(const std::string& path);

  /// Renders the collected spans (post-drain) as the Chrome trace JSON
  /// string — exposed for tests and the CLI.
  std::string ChromeTraceJson();

  /// Clears collected events and the drop counter, and fast-forwards every
  /// ring's cursor past its current contents. Test isolation only.
  void ResetForTest();

  /// Called by the thread-local ring handle on a thread's first span.
  void RegisterThread(std::shared_ptr<TraceRing>* ring, uint32_t* tid);

  /// The enable flag, exposed for the inline fast path.
  const std::atomic<bool>* enabled_flag() const { return &enabled_; }

 private:
  TraceCollector() = default;

  struct ThreadRecord {
    std::shared_ptr<TraceRing> ring;
    uint32_t tid = 0;
  };

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> dropped_total_{0};
  std::mutex mu_;
  std::vector<ThreadRecord> threads_;
  std::vector<CompletedSpan> collected_;
};

namespace internal {
/// The global enable flag, reachable without a function call so the
/// disabled span constructor inlines to load + branch.
extern std::atomic<bool>* const g_trace_enabled;
/// Pushes into the calling thread's ring (registering it on first use).
void EmitCompletedSpan(const char* name, uint64_t start_ns, uint64_t end_ns);
}  // namespace internal

inline bool TraceEnabled() {
  return internal::g_trace_enabled->load(std::memory_order_relaxed);
}

/// RAII span guard. Disabled: one relaxed atomic load + branch, no clock
/// read, no ring touch. Enabled: two clock reads and one wait-free push.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (!TraceEnabled()) return;
    name_ = name;
    start_ns_ = TraceNowNs();
  }
  ~TraceSpan() {
    if (name_ == nullptr) return;
    internal::EmitCompletedSpan(name_, start_ns_, TraceNowNs());
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  uint64_t start_ns_ = 0;
};

}  // namespace otfair::obs

#define OTFAIR_TRACE_CONCAT_INNER(a, b) a##b
#define OTFAIR_TRACE_CONCAT(a, b) OTFAIR_TRACE_CONCAT_INNER(a, b)
/// Traces the enclosing scope as one span. `name` must be a string
/// literal.
#define OTFAIR_TRACE_SPAN(name) \
  ::otfair::obs::TraceSpan OTFAIR_TRACE_CONCAT(otfair_trace_span_, __LINE__)(name)

#endif  // OTFAIR_OBS_TRACE_H_
