#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "common/file_util.h"
#include "common/json_writer.h"

namespace otfair::obs {

uint64_t TraceNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

TraceRing::TraceRing(size_t capacity) {
  const size_t cap = RoundUpPow2(std::max<size_t>(capacity, 2));
  mask_ = cap - 1;
  slots_ = std::vector<Slot>(cap);
}

uint64_t TraceRing::Drain(uint32_t tid, std::vector<CompletedSpan>* out) {
  const uint64_t head = head_.load(std::memory_order_acquire);
  const size_t cap = mask_ + 1;
  // Anything older than head - capacity has been overwritten.
  uint64_t start = consumed_;
  uint64_t dropped = 0;
  if (head > cap && start < head - cap) {
    dropped += (head - cap) - start;
    start = head - cap;
  }
  for (uint64_t i = start; i < head; ++i) {
    const Slot& slot = slots_[i & mask_];
    const uint64_t want = 2 * (i + 1);
    if (slot.seq.load(std::memory_order_acquire) != want) {
      // Torn (mid-write) or already overwritten by a newer generation.
      ++dropped;
      continue;
    }
    CompletedSpan span;
    span.name = reinterpret_cast<const char*>(slot.name.load(std::memory_order_relaxed));
    span.start_ns = slot.start_ns.load(std::memory_order_relaxed);
    span.end_ns = slot.end_ns.load(std::memory_order_relaxed);
    span.tid = tid;
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != want) {
      // Producer lapped us mid-copy; the copied fields may be torn.
      ++dropped;
      continue;
    }
    out->push_back(span);
  }
  consumed_ = head;
  return dropped;
}

TraceCollector& TraceCollector::Global() {
  // Leaked: spans can be emitted from detached threads during shutdown.
  static TraceCollector* collector = new TraceCollector();
  return *collector;
}

void TraceCollector::RegisterThread(std::shared_ptr<TraceRing>* ring, uint32_t* tid) {
  std::lock_guard<std::mutex> lock(mu_);
  ThreadRecord record;
  record.ring = std::make_shared<TraceRing>();
  record.tid = static_cast<uint32_t>(threads_.size()) + 1;
  threads_.push_back(record);
  *ring = record.ring;
  *tid = record.tid;
}

std::vector<CompletedSpan> TraceCollector::Drain() {
  std::lock_guard<std::mutex> lock(mu_);
  for (ThreadRecord& record : threads_) {
    const uint64_t dropped = record.ring->Drain(record.tid, &collected_);
    if (dropped != 0) dropped_total_.fetch_add(dropped, std::memory_order_relaxed);
  }
  return collected_;
}

std::string TraceCollector::ChromeTraceJson() {
  std::vector<CompletedSpan> spans = Drain();
  std::sort(spans.begin(), spans.end(), [](const CompletedSpan& a, const CompletedSpan& b) {
    if (a.tid != b.tid) return a.tid < b.tid;
    if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
    // Outer spans end later; emitting them first keeps nesting readable.
    return a.end_ns > b.end_ns;
  });
  // Timestamps are rebased to the earliest span: absolute steady-clock
  // microseconds (~1e10 after hours of uptime) would exceed the JSON
  // writer's 10 significant digits and quantize starts onto a 10 us grid,
  // breaking sub-span nesting in the viewer. Rebased values span only the
  // traced run, so full sub-microsecond precision survives.
  uint64_t base_ns = 0;
  if (!spans.empty()) {
    base_ns = spans.front().start_ns;
    for (const CompletedSpan& span : spans) base_ns = std::min(base_ns, span.start_ns);
  }
  common::JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit").String("ms");
  w.Key("traceEvents");
  w.BeginArray();
  for (const CompletedSpan& span : spans) {
    w.BeginObject();
    w.Key("name").String(span.name == nullptr ? "?" : span.name);
    w.Key("cat").String("otfair");
    w.Key("ph").String("X");
    w.Key("pid").Int(1);
    w.Key("tid").Int(static_cast<int64_t>(span.tid));
    w.Key("ts").Double(static_cast<double>(span.start_ns - base_ns) / 1000.0);
    w.Key("dur").Double(static_cast<double>(span.end_ns - span.start_ns) / 1000.0);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

common::Status TraceCollector::WriteChromeTrace(const std::string& path) {
  return common::AtomicWriteFile(path, ChromeTraceJson());
}

void TraceCollector::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (ThreadRecord& record : threads_) {
    std::vector<CompletedSpan> discard;
    record.ring->Drain(record.tid, &discard);
  }
  collected_.clear();
  dropped_total_.store(0, std::memory_order_relaxed);
}

namespace internal {

std::atomic<bool>* const g_trace_enabled = []() {
  // Touch the collector once so its enable flag outlives every user.
  return const_cast<std::atomic<bool>*>(TraceCollector::Global().enabled_flag());
}();

namespace {

/// Thread-local handle: registers this thread's ring with the collector on
/// first use and keeps it alive (shared_ptr) past thread exit.
struct ThreadRingHandle {
  std::shared_ptr<TraceRing> ring;
  uint32_t tid = 0;
  ThreadRingHandle() { TraceCollector::Global().RegisterThread(&ring, &tid); }
};

}  // namespace

void EmitCompletedSpan(const char* name, uint64_t start_ns, uint64_t end_ns) {
  thread_local ThreadRingHandle handle;
  handle.ring->Push(name, start_ns, end_ns);
}

}  // namespace internal

}  // namespace otfair::obs
