#ifndef OTFAIR_OBS_PROMETHEUS_H_
#define OTFAIR_OBS_PROMETHEUS_H_

#include <string>

#include "obs/registry.h"

namespace otfair::obs {

/// Renders every family in `registry` in the Prometheus text exposition
/// format (version 0.0.4): `# HELP` / `# TYPE` comments followed by
/// sample lines. Histograms expose cumulative `_bucket{le="..."}` samples
/// over a powers-of-4 microsecond ladder plus `_sum` and `_count`.
std::string RenderPrometheusText(const Registry& registry);

}  // namespace otfair::obs

#endif  // OTFAIR_OBS_PROMETHEUS_H_
