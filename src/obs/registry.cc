#include "obs/registry.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

namespace otfair::obs {

namespace {

uint64_t DoubleToBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double BitsToDouble(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

bool ValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
  };
  auto tail = [&](char c) { return head(c) || (c >= '0' && c <= '9'); };
  if (!head(name[0])) return false;
  for (size_t i = 1; i < name.size(); ++i) {
    if (!tail(name[i])) return false;
  }
  return true;
}

}  // namespace

void Gauge::Set(double v) { bits_.store(DoubleToBits(v), std::memory_order_relaxed); }

double Gauge::Value() const { return BitsToDouble(bits_.load(std::memory_order_relaxed)); }

int Histogram::BucketIndex(uint64_t us) {
  if (us < 8) return static_cast<int>(us);
  const int exp = 63 - std::countl_zero(us);
  const int sub = static_cast<int>((us >> (exp - 3)) & 7);
  const int bucket = 8 + 8 * (exp - 3) + sub;
  return bucket < kBuckets ? bucket : kBuckets - 1;
}

uint64_t Histogram::BucketValueUs(int bucket) {
  if (bucket < 8) return static_cast<uint64_t>(bucket);
  const int exp = 3 + (bucket - 8) / 8;
  const int sub = (bucket - 8) % 8;
  const uint64_t lo = (uint64_t{1} << exp) + (static_cast<uint64_t>(sub) << (exp - 3));
  const uint64_t width = uint64_t{1} << (exp - 3);
  return lo + width / 2;
}

uint64_t Histogram::BucketUpperEdgeUs(int bucket) {
  if (bucket < 8) return static_cast<uint64_t>(bucket);
  const int exp = 3 + (bucket - 8) / 8;
  const int sub = (bucket - 8) % 8;
  const uint64_t lo = (uint64_t{1} << exp) + (static_cast<uint64_t>(sub) << (exp - 3));
  const uint64_t width = uint64_t{1} << (exp - 3);
  return lo + width - 1;
}

void Histogram::Record(uint64_t us) {
  counts_[BucketIndex(us)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // CAS-accumulate the double sum; contention here is bounded by the
  // latency-sampling rate, not the row rate.
  uint64_t old_bits = sum_bits_.load(std::memory_order_relaxed);
  while (true) {
    const uint64_t new_bits = DoubleToBits(BitsToDouble(old_bits) + static_cast<double>(us));
    if (sum_bits_.compare_exchange_weak(old_bits, new_bits, std::memory_order_relaxed)) break;
  }
  uint64_t old_max = max_.load(std::memory_order_relaxed);
  while (us > old_max &&
         !max_.compare_exchange_weak(old_max, us, std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::Read() const {
  Snapshot snap;
  snap.counts.resize(kBuckets);
  for (int i = 0; i < kBuckets; ++i) {
    snap.counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = BitsToDouble(sum_bits_.load(std::memory_order_relaxed));
  snap.max = max_.load(std::memory_order_relaxed);
  return snap;
}

Histogram::Snapshot Histogram::Delta(const Snapshot& cur, const Snapshot& prev) {
  Snapshot delta;
  delta.counts.resize(kBuckets);
  for (int i = 0; i < kBuckets; ++i) {
    const uint64_t p = i < static_cast<int>(prev.counts.size()) ? prev.counts[i] : 0;
    delta.counts[i] = cur.counts[i] >= p ? cur.counts[i] - p : 0;
  }
  delta.count = cur.count >= prev.count ? cur.count - prev.count : 0;
  delta.sum = cur.sum - prev.sum;
  delta.max = cur.max;
  return delta;
}

uint64_t Histogram::Snapshot::QuantileUs(double q) const {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    seen += counts[i];
    if (seen >= rank) {
      const uint64_t v = Histogram::BucketValueUs(i);
      return v < max ? v : max;
    }
  }
  return max;
}

common::Status Registry::CheckName(const std::string& name) const {
  if (!ValidMetricName(name)) {
    return common::Status::InvalidArgument("invalid metric name: '" + name + "'");
  }
  if (instruments_.count(name) != 0) {
    return common::Status::InvalidArgument("duplicate metric name: '" + name + "'");
  }
  for (const auto& [id, cb] : callbacks_) {
    (void)id;
    if (cb.name == name) {
      return common::Status::InvalidArgument("duplicate metric name: '" + name + "'");
    }
  }
  return common::Status::Ok();
}

common::Result<Counter*> Registry::AddCounter(const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  OTFAIR_RETURN_IF_ERROR(CheckName(name));
  Instrument& inst = instruments_[name];
  inst.help = help;
  inst.kind = MetricKind::kCounter;
  inst.counter = std::make_unique<Counter>();
  return inst.counter.get();
}

common::Result<Gauge*> Registry::AddGauge(const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  OTFAIR_RETURN_IF_ERROR(CheckName(name));
  Instrument& inst = instruments_[name];
  inst.help = help;
  inst.kind = MetricKind::kGauge;
  inst.gauge = std::make_unique<Gauge>();
  return inst.gauge.get();
}

common::Result<Histogram*> Registry::AddHistogram(const std::string& name,
                                                  const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  OTFAIR_RETURN_IF_ERROR(CheckName(name));
  Instrument& inst = instruments_[name];
  inst.help = help;
  inst.kind = MetricKind::kHistogram;
  inst.histogram = std::make_unique<Histogram>();
  return inst.histogram.get();
}

common::Result<CallbackHandle> Registry::AddCallback(const std::string& name,
                                                     const std::string& help, MetricKind kind,
                                                     MetricCallback fn) {
  std::lock_guard<std::mutex> lock(mu_);
  OTFAIR_RETURN_IF_ERROR(CheckName(name));
  const uint64_t id = next_callback_id_++;
  callbacks_[id] = Callback{name, help, kind, std::move(fn)};
  return CallbackHandle(this, id);
}

void Registry::RemoveCallback(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  callbacks_.erase(id);
}

std::vector<std::string> Registry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(instruments_.size() + callbacks_.size());
  for (const auto& [name, inst] : instruments_) {
    (void)inst;
    names.push_back(name);
  }
  for (const auto& [id, cb] : callbacks_) {
    (void)id;
    names.push_back(cb.name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::vector<MetricFamily> Registry::Collect() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricFamily> families;
  families.reserve(instruments_.size() + callbacks_.size());
  for (const auto& [name, inst] : instruments_) {
    MetricFamily family;
    family.name = name;
    family.help = inst.help;
    family.kind = inst.kind;
    switch (inst.kind) {
      case MetricKind::kCounter:
        family.samples.push_back({"", static_cast<double>(inst.counter->Value())});
        break;
      case MetricKind::kGauge:
        family.samples.push_back({"", inst.gauge->Value()});
        break;
      case MetricKind::kHistogram:
        family.histogram = inst.histogram->Read();
        break;
    }
    families.push_back(std::move(family));
  }
  for (const auto& [id, cb] : callbacks_) {
    (void)id;
    MetricFamily family;
    family.name = cb.name;
    family.help = cb.help;
    family.kind = cb.kind;
    family.samples = cb.fn();
    families.push_back(std::move(family));
  }
  std::sort(families.begin(), families.end(),
            [](const MetricFamily& a, const MetricFamily& b) { return a.name < b.name; });
  return families;
}

CallbackHandle::CallbackHandle(CallbackHandle&& other) noexcept
    : registry_(other.registry_), id_(other.id_) {
  other.registry_ = nullptr;
  other.id_ = 0;
}

CallbackHandle& CallbackHandle::operator=(CallbackHandle&& other) noexcept {
  if (this != &other) {
    if (registry_ != nullptr) registry_->RemoveCallback(id_);
    registry_ = other.registry_;
    id_ = other.id_;
    other.registry_ = nullptr;
    other.id_ = 0;
  }
  return *this;
}

CallbackHandle::~CallbackHandle() {
  if (registry_ != nullptr) registry_->RemoveCallback(id_);
}

}  // namespace otfair::obs
