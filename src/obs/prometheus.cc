#include "obs/prometheus.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdint>

namespace otfair::obs {

namespace {

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "untyped";
}

/// Shortest round-trip double formatting; integers render without a dot
/// (Prometheus accepts both, integer form is friendlier to diffs).
std::string FormatValue(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, static_cast<int64_t>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Escapes a HELP text: backslash and newline per the exposition format.
std::string EscapeHelp(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// Cumulative bucket ladder for histogram exposition: powers of 4 from
/// 1µs to ~1s, a good spread for sub-ms repair latencies through slow
/// fsyncs. The native 328-slot resolution stays available via quantile
/// gauges; exposition buckets trade resolution for scrape size.
constexpr uint64_t kLadderUs[] = {1,    4,     16,    64,     256,    1024,
                                  4096, 16384, 65536, 262144, 1048576};

void AppendHistogram(const MetricFamily& family, std::string* out) {
  const Histogram::Snapshot& snap = *family.histogram;
  uint64_t cumulative = 0;
  int bucket = 0;
  for (uint64_t le : kLadderUs) {
    // Native buckets whose inclusive upper edge fits under the ladder rung
    // belong to it; edges are exact powers-of-two boundaries so the
    // powers-of-4 ladder never splits a native bucket.
    while (bucket < Histogram::kBuckets && Histogram::BucketUpperEdgeUs(bucket) <= le) {
      cumulative += snap.counts[bucket];
      ++bucket;
    }
    *out += family.name + "_bucket{le=\"" + FormatValue(static_cast<double>(le)) +
            "\"} " + FormatValue(static_cast<double>(cumulative)) + "\n";
  }
  *out += family.name + "_bucket{le=\"+Inf\"} " +
          FormatValue(static_cast<double>(snap.count)) + "\n";
  *out += family.name + "_sum " + FormatValue(snap.sum) + "\n";
  *out += family.name + "_count " + FormatValue(static_cast<double>(snap.count)) + "\n";
}

}  // namespace

std::string RenderPrometheusText(const Registry& registry) {
  std::string out;
  for (const MetricFamily& family : registry.Collect()) {
    out.append("# HELP ").append(family.name).append(" ").append(EscapeHelp(family.help));
    out.append("\n# TYPE ").append(family.name).append(" ").append(KindName(family.kind));
    out.append("\n");
    if (family.kind == MetricKind::kHistogram && family.histogram.has_value()) {
      AppendHistogram(family, &out);
      continue;
    }
    for (const MetricSample& sample : family.samples) {
      out += family.name;
      if (!sample.labels.empty()) {
        out.append("{").append(sample.labels).append("}");
      }
      out.append(" ").append(FormatValue(sample.value)).append("\n");
    }
  }
  return out;
}

}  // namespace otfair::obs
