#include "data/dataset.h"

#include <algorithm>

#include "common/check.h"
#include "common/status.h"

namespace otfair::data {

using common::Matrix;
using common::Result;
using common::Rng;
using common::Status;

namespace {

/// Resolves an attribute's level count: explicit wins (validated against
/// `min_levels`), otherwise Dataset::InferLevels.
Result<size_t> ResolveLevels(const std::vector<int>& labels, size_t explicit_levels,
                             size_t min_levels, const char* name) {
  size_t levels = explicit_levels;
  if (levels == 0) levels = Dataset::InferLevels(labels);
  if (levels < min_levels)
    return Status::InvalidArgument(std::string(name) + "_levels must be >= " +
                                   std::to_string(min_levels));
  if (levels > kMaxAttributeLevels)
    return Status::InvalidArgument(std::string(name) + "_levels exceeds the supported maximum");
  for (int v : labels) {
    if (v < 0 || static_cast<size_t>(v) >= levels)
      return Status::InvalidArgument(std::string(name) + " labels must lie in [0, " +
                                     std::to_string(levels) + ")");
  }
  return levels;
}

}  // namespace

size_t Dataset::InferLevels(const std::vector<int>& labels) {
  int max_label = 0;
  for (int v : labels) max_label = std::max(max_label, v);
  return std::max<size_t>(static_cast<size_t>(max_label) + 1, 2);
}

Result<Dataset> Dataset::Create(Matrix features, std::vector<int> s, std::vector<int> u,
                                std::vector<std::string> feature_names, std::vector<int> outcome,
                                size_t s_levels, size_t u_levels) {
  const size_t n = features.rows();
  if (n == 0) return Status::InvalidArgument("dataset must have at least one row");
  if (s.size() != n || u.size() != n)
    return Status::InvalidArgument("label vectors must match the number of rows");
  if (!outcome.empty() && outcome.size() != n)
    return Status::InvalidArgument("outcome vector must match the number of rows");
  if (feature_names.size() != features.cols())
    return Status::InvalidArgument("feature_names must match the number of feature columns");
  auto resolved_s = ResolveLevels(s, s_levels, 2, "s");
  if (!resolved_s.ok()) return resolved_s.status();
  auto resolved_u = ResolveLevels(u, u_levels, 1, "u");
  if (!resolved_u.ok()) return resolved_u.status();
  for (size_t i = 0; i < n; ++i) {
    if (!outcome.empty() && outcome[i] != 0 && outcome[i] != 1)
      return Status::InvalidArgument("outcomes must be binary");
  }
  Dataset out;
  out.features_ = std::move(features);
  out.s_ = std::move(s);
  out.u_ = std::move(u);
  out.y_ = std::move(outcome);
  out.feature_names_ = std::move(feature_names);
  out.s_levels_ = *resolved_s;
  out.u_levels_ = *resolved_u;
  return out;
}

std::vector<double> Dataset::Row(size_t i) const {
  OTFAIR_CHECK_LT(i, size());
  return std::vector<double>(features_.row(i), features_.row(i) + dim());
}

std::vector<GroupKey> Dataset::Groups() const {
  std::vector<GroupKey> out;
  out.reserve(u_levels_ * s_levels_);
  for (size_t u = 0; u < u_levels_; ++u) {
    for (size_t s = 0; s < s_levels_; ++s)
      out.push_back(GroupKey{static_cast<int>(u), static_cast<int>(s)});
  }
  return out;
}

std::vector<size_t> Dataset::GroupIndices(const GroupKey& group) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < size(); ++i) {
    if (u_[i] == group.u && s_[i] == group.s) out.push_back(i);
  }
  return out;
}

std::vector<std::vector<size_t>> Dataset::GroupIndexBuckets() const {
  std::vector<std::vector<size_t>> buckets(u_levels_ * s_levels_);
  for (size_t i = 0; i < size(); ++i)
    buckets[static_cast<size_t>(u_[i]) * s_levels_ + static_cast<size_t>(s_[i])].push_back(i);
  return buckets;
}

std::vector<size_t> Dataset::UIndices(int u) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < size(); ++i) {
    if (u_[i] == u) out.push_back(i);
  }
  return out;
}

std::vector<double> Dataset::FeatureColumn(size_t k, const std::vector<size_t>& indices) const {
  OTFAIR_CHECK_LT(k, dim());
  std::vector<double> out;
  out.reserve(indices.size());
  for (size_t i : indices) {
    OTFAIR_CHECK_LT(i, size());
    out.push_back(features_(i, k));
  }
  return out;
}

std::vector<double> Dataset::FeatureColumn(size_t k) const {
  OTFAIR_CHECK_LT(k, dim());
  std::vector<double> out;
  out.reserve(size());
  for (size_t i = 0; i < size(); ++i) out.push_back(features_(i, k));
  return out;
}

std::map<GroupKey, size_t> Dataset::GroupCounts() const {
  std::map<GroupKey, size_t> counts;
  for (const GroupKey& g : Groups()) counts[g] = 0;
  for (size_t i = 0; i < size(); ++i) ++counts[GroupKey{u_[i], s_[i]}];
  return counts;
}

double Dataset::ProportionU1() const { return ProportionU(1); }

double Dataset::ProportionS1GivenU(int u) const { return ProportionSGivenU(1, u); }

double Dataset::ProportionU(int level) const {
  size_t count = 0;
  for (int u : u_) count += static_cast<size_t>(u == level);
  return static_cast<double>(count) / static_cast<double>(size());
}

double Dataset::ProportionSGivenU(int level, int u) const {
  size_t in_group = 0;
  size_t hits = 0;
  for (size_t i = 0; i < size(); ++i) {
    if (u_[i] == u) {
      ++in_group;
      hits += static_cast<size_t>(s_[i] == level);
    }
  }
  return in_group == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(in_group);
}

Dataset Dataset::Subset(const std::vector<size_t>& indices) const {
  Dataset out;
  out.features_ = Matrix(indices.size(), dim());
  out.s_.reserve(indices.size());
  out.u_.reserve(indices.size());
  if (has_outcome()) out.y_.reserve(indices.size());
  out.feature_names_ = feature_names_;
  out.s_levels_ = s_levels_;
  out.u_levels_ = u_levels_;
  for (size_t r = 0; r < indices.size(); ++r) {
    const size_t i = indices[r];
    OTFAIR_CHECK_LT(i, size());
    for (size_t k = 0; k < dim(); ++k) out.features_(r, k) = features_(i, k);
    out.s_.push_back(s_[i]);
    out.u_.push_back(u_[i]);
    if (has_outcome()) out.y_.push_back(y_[i]);
  }
  return out;
}

Result<std::pair<Dataset, Dataset>> SplitResearchArchive(const Dataset& dataset,
                                                         size_t n_research, Rng& rng) {
  if (n_research == 0 || n_research >= dataset.size())
    return Status::InvalidArgument("research size must be in (0, dataset size)");
  std::vector<size_t> perm = rng.Permutation(dataset.size());
  std::vector<size_t> research(perm.begin(), perm.begin() + static_cast<long>(n_research));
  std::vector<size_t> archive(perm.begin() + static_cast<long>(n_research), perm.end());
  return std::make_pair(dataset.Subset(research), dataset.Subset(archive));
}

}  // namespace otfair::data
