#include "data/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace otfair::data {

using common::Result;
using common::Status;

Status WriteCsv(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << "s,u";
  if (dataset.has_outcome()) out << ",y";
  for (const std::string& name : dataset.feature_names()) out << "," << name;
  out << "\n";
  out.precision(17);
  for (size_t i = 0; i < dataset.size(); ++i) {
    out << dataset.s(i) << "," << dataset.u(i);
    if (dataset.has_outcome()) out << "," << dataset.y(i);
    for (size_t k = 0; k < dataset.dim(); ++k) out << "," << dataset.feature(i, k);
    out << "\n";
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<Dataset> ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);

  std::string line;
  if (!std::getline(in, line)) return Status::IoError("empty file: " + path);
  std::vector<std::string> header = common::Split(common::Trim(line), ',');
  if (header.size() < 3 || common::Trim(header[0]) != "s" || common::Trim(header[1]) != "u")
    return Status::InvalidArgument("header must be 's,u[,y],<features...>': " + path);
  const bool has_outcome = common::Trim(header[2]) == "y";
  const size_t feature_start = has_outcome ? 3 : 2;
  if (header.size() <= feature_start)
    return Status::InvalidArgument("no feature columns in header: " + path);
  std::vector<std::string> names;
  for (size_t c = feature_start; c < header.size(); ++c) names.push_back(common::Trim(header[c]));
  const size_t d = names.size();

  std::vector<std::vector<double>> rows;
  std::vector<int> s;
  std::vector<int> u;
  std::vector<int> y;
  size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string trimmed = common::Trim(line);
    if (trimmed.empty()) continue;
    std::vector<std::string> cells = common::Split(trimmed, ',');
    if (cells.size() != header.size())
      return Status::InvalidArgument("row " + std::to_string(line_number) +
                                     ": wrong column count in " + path);
    auto parse_label = [&](const std::string& cell, int* out_label) -> bool {
      const std::string t = common::Trim(cell);
      if (t == "0") {
        *out_label = 0;
        return true;
      }
      if (t == "1") {
        *out_label = 1;
        return true;
      }
      return false;
    };
    int si = 0;
    int ui = 0;
    if (!parse_label(cells[0], &si) || !parse_label(cells[1], &ui))
      return Status::InvalidArgument("row " + std::to_string(line_number) +
                                     ": labels must be 0/1 in " + path);
    s.push_back(si);
    u.push_back(ui);
    if (has_outcome) {
      int yi = 0;
      if (!parse_label(cells[2], &yi))
        return Status::InvalidArgument("row " + std::to_string(line_number) +
                                       ": outcome must be 0/1 in " + path);
      y.push_back(yi);
    }
    std::vector<double> row(d);
    for (size_t k = 0; k < d; ++k) {
      const std::string cell = common::Trim(cells[feature_start + k]);
      char* end = nullptr;
      row[k] = std::strtod(cell.c_str(), &end);
      if (end == cell.c_str() || *end != '\0')
        return Status::InvalidArgument("row " + std::to_string(line_number) +
                                       ": bad number '" + cell + "' in " + path);
    }
    rows.push_back(std::move(row));
  }
  if (rows.empty()) return Status::InvalidArgument("no data rows in " + path);
  return Dataset::Create(common::Matrix::FromRows(rows), std::move(s), std::move(u),
                         std::move(names), std::move(y));
}

}  // namespace otfair::data
