#include "data/csv.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace otfair::data {

using common::Result;
using common::Status;

Status WriteCsv(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  // Level counts that inference cannot recover (a declared level with no
  // observed rows, or a single declared u stratum) are persisted in a
  // comment line. Datasets whose levels match inference — every
  // binary-era file — are written byte-identically to earlier releases.
  if (dataset.s_levels() != Dataset::InferLevels(dataset.s_labels()) ||
      dataset.u_levels() != Dataset::InferLevels(dataset.u_labels())) {
    out << "# s_levels=" << dataset.s_levels() << " u_levels=" << dataset.u_levels() << "\n";
  }
  out << "s,u";
  if (dataset.has_outcome()) out << ",y";
  for (const std::string& name : dataset.feature_names()) out << "," << name;
  out << "\n";
  out.precision(17);
  for (size_t i = 0; i < dataset.size(); ++i) {
    out << dataset.s(i) << "," << dataset.u(i);
    if (dataset.has_outcome()) out << "," << dataset.y(i);
    for (size_t k = 0; k < dataset.dim(); ++k) out << "," << dataset.feature(i, k);
    out << "\n";
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<Dataset> ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);

  std::string line;
  if (!std::getline(in, line)) return Status::IoError("empty file: " + path);
  // Optional level-count comment (written by WriteCsv when inference
  // would under-count; see above). A comment line that is not a valid
  // level declaration is an error, not silently ignored — dropping a
  // malformed declaration would let the dataset load with the wrong |S|.
  size_t s_levels = 0;
  size_t u_levels = 0;
  if (!line.empty() && line[0] == '#') {
    int s_parsed = 0;
    int u_parsed = 0;
    if (std::sscanf(line.c_str(), "# s_levels=%d u_levels=%d", &s_parsed, &u_parsed) != 2 ||
        s_parsed < 2 || u_parsed < 1)
      return Status::InvalidArgument(
          "unrecognized comment header (expected '# s_levels=K u_levels=M'): " + path);
    s_levels = static_cast<size_t>(s_parsed);
    u_levels = static_cast<size_t>(u_parsed);
    if (!std::getline(in, line)) return Status::IoError("empty file: " + path);
  }
  std::vector<std::string> header = common::Split(common::Trim(line), ',');
  if (header.size() < 3 || common::Trim(header[0]) != "s" || common::Trim(header[1]) != "u")
    return Status::InvalidArgument("header must be 's,u[,y],<features...>': " + path);
  const bool has_outcome = common::Trim(header[2]) == "y";
  const size_t feature_start = has_outcome ? 3 : 2;
  if (header.size() <= feature_start)
    return Status::InvalidArgument("no feature columns in header: " + path);
  std::vector<std::string> names;
  for (size_t c = feature_start; c < header.size(); ++c) names.push_back(common::Trim(header[c]));
  const size_t d = names.size();

  std::vector<std::vector<double>> rows;
  std::vector<int> s;
  std::vector<int> u;
  std::vector<int> y;
  size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string trimmed = common::Trim(line);
    if (trimmed.empty()) continue;
    std::vector<std::string> cells = common::Split(trimmed, ',');
    if (cells.size() != header.size())
      return Status::InvalidArgument("row " + std::to_string(line_number) +
                                     ": wrong column count in " + path);
    // s/u are categorical levels (any non-negative integer); y stays 0/1.
    auto parse_level = [&](const std::string& cell, int* out_label) -> bool {
      const std::string t = common::Trim(cell);
      if (t.empty()) return false;
      char* end = nullptr;
      const long v = std::strtol(t.c_str(), &end, 10);
      if (end == t.c_str() || *end != '\0' || v < 0 || v > (1 << 20)) return false;
      *out_label = static_cast<int>(v);
      return true;
    };
    int si = 0;
    int ui = 0;
    if (!parse_level(cells[0], &si) || !parse_level(cells[1], &ui))
      return Status::InvalidArgument("row " + std::to_string(line_number) +
                                     ": labels must be non-negative integers in " + path);
    s.push_back(si);
    u.push_back(ui);
    if (has_outcome) {
      int yi = 0;
      if (!parse_level(cells[2], &yi) || yi > 1)
        return Status::InvalidArgument("row " + std::to_string(line_number) +
                                       ": outcome must be 0/1 in " + path);
      y.push_back(yi);
    }
    std::vector<double> row(d);
    for (size_t k = 0; k < d; ++k) {
      const std::string cell = common::Trim(cells[feature_start + k]);
      char* end = nullptr;
      row[k] = std::strtod(cell.c_str(), &end);
      if (end == cell.c_str() || *end != '\0')
        return Status::InvalidArgument("row " + std::to_string(line_number) +
                                       ": bad number '" + cell + "' in " + path);
    }
    rows.push_back(std::move(row));
  }
  if (rows.empty()) return Status::InvalidArgument("no data rows in " + path);
  return Dataset::Create(common::Matrix::FromRows(rows), std::move(s), std::move(u),
                         std::move(names), std::move(y), s_levels, u_levels);
}

}  // namespace otfair::data
