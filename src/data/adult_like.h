#ifndef OTFAIR_DATA_ADULT_LIKE_H_
#define OTFAIR_DATA_ADULT_LIKE_H_

#include <cstddef>

#include "common/result.h"
#include "common/rng.h"
#include "data/dataset.h"

namespace otfair::data {

/// Options for the synthetic Adult-income generator.
struct AdultLikeOptions {
  /// Nonstationarity knob in [0, 1]: 0 reproduces the research-data
  /// distribution; positive values shift the age location and the
  /// hours-mixture weights, mimicking the research-vs-archive drift the
  /// paper observes in the real Adult data (§V-B remark (i)).
  double drift = 0.0;
  /// Also draw a binary income outcome y (>$50k analogue) from a logistic
  /// model in (age, hours, u, s); used by classifier-based fairness metrics.
  bool with_outcome = true;
  /// Round age and hours to whole numbers, as the genuine Adult file
  /// records them. Integer ties (nearly half the population reports
  /// exactly 40 hours) are what break the point-wise geometric repair on
  /// the hours channel in the paper's Table II; keep this on to reproduce
  /// that effect.
  bool integer_valued = true;
  /// Protected-attribute cardinality |S| >= 2. The default 2 reproduces
  /// the paper's male/female split bit-for-bit; larger values interpolate
  /// the per-group parameters along s/( |S|-1 ) — a race-/age-band-like
  /// multi-group stratification for scenario testing.
  size_t s_levels = 2;
  /// Unprotected-attribute cardinality |U| >= 2 (education bands).
  size_t u_levels = 2;
};

/// Generates an Adult-income-like dataset (documented substitution for the
/// UCI Adult file, which cannot be fetched offline — see DESIGN.md §3).
///
/// Semantics follow the paper's §V-B setup: s = 1 for males, u = 1 for
/// college-or-above education, features restricted to the two continuous
/// columns {age, hours_per_week}. The generator is calibrated to the
/// published Adult marginal statistics:
///
///  * Pr[u=1] ≈ 0.27; Pr[s=1|u=0] ≈ 0.64, Pr[s=1|u=1] ≈ 0.72 — the
///    structural S–U dependence the paper explicitly declines to repair.
///  * age: shifted-gamma (right-skewed, clamped to [17, 90]) with
///    (u, s)-dependent location — males and the college-educated are older.
///  * hours/week: tri-modal mixture (part-time lobe, a heavy spike at 40,
///    an overtime lobe, clamped to [1, 99]) whose mixture weights depend on
///    (u, s) — this reproduces Adult's hallmark non-Gaussian spike and makes
///    the s|u-conditionals differ in shape, not just location.
///
/// With `s_levels`/`u_levels` above 2 the four calibrated corner parameter
/// sets are bilinearly interpolated over (u/(|U|-1), s/(|S|-1)) and the
/// group priors follow a geometric-odds tilt, so every extra level sits
/// between the published extremes. The default binary configuration takes
/// the original code path and is bit-identical to the pre-multi-group
/// generator.
///
/// The resulting per-feature s|u-dependence is mild relative to the
/// simulation study (unrepaired E_k of order 0.5–3, cf. paper Table II vs
/// Table I), which is the regime §V-B exercises.
common::Result<Dataset> GenerateAdultLike(size_t n, common::Rng& rng,
                                          const AdultLikeOptions& options = {});

}  // namespace otfair::data

#endif  // OTFAIR_DATA_ADULT_LIKE_H_
