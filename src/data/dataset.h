#ifndef OTFAIR_DATA_DATASET_H_
#define OTFAIR_DATA_DATASET_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/matrix.h"
#include "common/result.h"
#include "common/rng.h"

namespace otfair::data {

/// A (u, s) sub-group key: the paper stratifies every operation by the
/// unprotected attribute u and the protected attribute s (both binary).
struct GroupKey {
  int u = 0;
  int s = 0;

  friend bool operator==(const GroupKey& a, const GroupKey& b) {
    return a.u == b.u && a.s == b.s;
  }
  friend bool operator<(const GroupKey& a, const GroupKey& b) {
    return a.u != b.u ? a.u < b.u : a.s < b.s;
  }
};

/// All four (u, s) groups in canonical order.
std::vector<GroupKey> AllGroups();

/// Columnar data set realizing the paper's observation model Z = {X, S, U}
/// (§II): an n x d feature matrix X, a binary protected attribute S, a
/// binary unprotected attribute U, and an optional binary outcome Y used
/// when training/evaluating downstream classifiers.
///
/// Features are mutable (repair rewrites them); labels are fixed at
/// construction.
class Dataset {
 public:
  Dataset() = default;

  /// Validates shapes and label ranges ({0,1}); `outcome` may be empty.
  static common::Result<Dataset> Create(common::Matrix features, std::vector<int> s,
                                        std::vector<int> u,
                                        std::vector<std::string> feature_names,
                                        std::vector<int> outcome = {});

  size_t size() const { return s_.size(); }
  size_t dim() const { return features_.cols(); }
  bool empty() const { return s_.empty(); }
  bool has_outcome() const { return !y_.empty(); }

  const common::Matrix& features() const { return features_; }
  double feature(size_t i, size_t k) const { return features_(i, k); }
  void set_feature(size_t i, size_t k, double value) { features_(i, k) = value; }
  int s(size_t i) const { return s_[i]; }
  int u(size_t i) const { return u_[i]; }
  int y(size_t i) const { return y_[i]; }
  const std::vector<int>& s_labels() const { return s_; }
  const std::vector<int>& u_labels() const { return u_; }
  const std::vector<int>& outcomes() const { return y_; }
  const std::vector<std::string>& feature_names() const { return feature_names_; }

  /// Row i as a vector (length dim()).
  std::vector<double> Row(size_t i) const;

  /// Indices of rows in group (u, s).
  std::vector<size_t> GroupIndices(const GroupKey& group) const;

  /// Indices of rows with the given u label (both s groups).
  std::vector<size_t> UIndices(int u) const;

  /// Feature column k restricted to `indices` (all rows if empty
  /// `indices` is passed explicitly as the full index set by callers).
  std::vector<double> FeatureColumn(size_t k, const std::vector<size_t>& indices) const;

  /// Feature column k over all rows.
  std::vector<double> FeatureColumn(size_t k) const;

  /// Row counts per (u, s) group.
  std::map<GroupKey, size_t> GroupCounts() const;

  /// Empirical Pr[u = 1].
  double ProportionU1() const;
  /// Empirical Pr[s = 1 | u].
  double ProportionS1GivenU(int u) const;

  /// New dataset containing the selected rows (in the given order).
  Dataset Subset(const std::vector<size_t>& indices) const;

  /// Deep copy (features are value-copied so repairs don't alias).
  Dataset Clone() const { return *this; }

 private:
  common::Matrix features_;
  std::vector<int> s_;
  std::vector<int> u_;
  std::vector<int> y_;
  std::vector<std::string> feature_names_;
};

/// Randomly splits a dataset into a research set of `n_research` rows and an
/// archive with the remainder, mirroring the paper's small-research /
/// large-archive regime (n_R << n_A). Returns InvalidArgument when
/// `n_research` is 0 or >= dataset size.
common::Result<std::pair<Dataset, Dataset>> SplitResearchArchive(const Dataset& dataset,
                                                                 size_t n_research,
                                                                 common::Rng& rng);

}  // namespace otfair::data

#endif  // OTFAIR_DATA_DATASET_H_
