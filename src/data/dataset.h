#ifndef OTFAIR_DATA_DATASET_H_
#define OTFAIR_DATA_DATASET_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/matrix.h"
#include "common/result.h"
#include "common/rng.h"

namespace otfair::data {

/// Upper bound on attribute cardinalities, shared by dataset validation
/// and the plan-file loader: guards every O(|U| * |S| * d) consumer
/// against corrupt label columns or artifacts.
inline constexpr size_t kMaxAttributeLevels = 1024;

/// A (u, s) sub-group key: the paper stratifies every operation by the
/// unprotected attribute u and the protected attribute s. Both are
/// categorical levels 0..L-1; the paper's binary setting is the special
/// case |S| = |U| = 2.
struct GroupKey {
  int u = 0;
  int s = 0;

  friend bool operator==(const GroupKey& a, const GroupKey& b) {
    return a.u == b.u && a.s == b.s;
  }
  friend bool operator<(const GroupKey& a, const GroupKey& b) {
    return a.u != b.u ? a.u < b.u : a.s < b.s;
  }
};

/// Columnar data set realizing the paper's observation model Z = {X, S, U}
/// (§II): an n x d feature matrix X, a categorical protected attribute S
/// with |S| levels, a categorical unprotected attribute U with |U| levels,
/// and an optional binary outcome Y used when training/evaluating
/// downstream classifiers. The paper's formulation is binary
/// (|S| = |U| = 2); every level count defaults to that case and the binary
/// code paths are preserved bit-for-bit.
///
/// Features are mutable (repair rewrites them); labels are fixed at
/// construction.
class Dataset {
 public:
  Dataset() = default;

  /// Validates shapes and label ranges; `outcome` may be empty (and stays
  /// binary when present). `s_levels` / `u_levels` fix the attribute
  /// cardinalities; 0 infers each as (max observed label + 1), floored at
  /// 2 so binary-era datasets keep their two-level semantics even when a
  /// level happens to be unobserved.
  static common::Result<Dataset> Create(common::Matrix features, std::vector<int> s,
                                        std::vector<int> u,
                                        std::vector<std::string> feature_names,
                                        std::vector<int> outcome = {}, size_t s_levels = 0,
                                        size_t u_levels = 0);

  /// The level count Create() infers when none is given: max label + 1,
  /// floored at 2 (the binary-era contract — an unobserved second level
  /// still exists). Exposed so serializers can tell whether a dataset's
  /// declared levels are recoverable by inference alone.
  static size_t InferLevels(const std::vector<int>& labels);

  size_t size() const { return s_.size(); }
  size_t dim() const { return features_.cols(); }
  bool empty() const { return s_.empty(); }
  bool has_outcome() const { return !y_.empty(); }

  /// Number of protected-attribute levels |S| (>= 2).
  size_t s_levels() const { return s_levels_; }
  /// Number of unprotected-attribute levels |U| (>= 1; inference floors at
  /// 2, a single stratum must be declared explicitly).
  size_t u_levels() const { return u_levels_; }

  const common::Matrix& features() const { return features_; }
  double feature(size_t i, size_t k) const { return features_(i, k); }
  void set_feature(size_t i, size_t k, double value) { features_(i, k) = value; }
  int s(size_t i) const { return s_[i]; }
  int u(size_t i) const { return u_[i]; }
  int y(size_t i) const { return y_[i]; }
  const std::vector<int>& s_labels() const { return s_; }
  const std::vector<int>& u_labels() const { return u_; }
  const std::vector<int>& outcomes() const { return y_; }
  const std::vector<std::string>& feature_names() const { return feature_names_; }

  /// Row i as a vector (length dim()).
  std::vector<double> Row(size_t i) const;

  /// All |U| x |S| (u, s) groups of this dataset in canonical order
  /// (u-major, s-minor). Replaces the binary-era free AllGroups().
  std::vector<GroupKey> Groups() const;

  /// Indices of rows in group (u, s).
  std::vector<size_t> GroupIndices(const GroupKey& group) const;

  /// Every group's index set in ONE O(n) pass: element [u * |S| + s]
  /// holds exactly GroupIndices({u, s}) (row order preserved). Use this
  /// when iterating all groups — per-group GroupIndices calls cost
  /// |U| * |S| full scans.
  std::vector<std::vector<size_t>> GroupIndexBuckets() const;

  /// Indices of rows with the given u label (all s groups).
  std::vector<size_t> UIndices(int u) const;

  /// Feature column k restricted to `indices` (all rows if empty
  /// `indices` is passed explicitly as the full index set by callers).
  std::vector<double> FeatureColumn(size_t k, const std::vector<size_t>& indices) const;

  /// Feature column k over all rows.
  std::vector<double> FeatureColumn(size_t k) const;

  /// Row counts per (u, s) group (every group present, possibly 0).
  std::map<GroupKey, size_t> GroupCounts() const;

  /// Empirical Pr[u = 1].
  double ProportionU1() const;
  /// Empirical Pr[s = 1 | u].
  double ProportionS1GivenU(int u) const;
  /// Empirical Pr[u = level].
  double ProportionU(int level) const;
  /// Empirical Pr[s = level | u] (0 when the u stratum is empty).
  double ProportionSGivenU(int level, int u) const;

  /// New dataset containing the selected rows (in the given order). Level
  /// counts are inherited, so sub-sampling cannot shrink |S| or |U|.
  Dataset Subset(const std::vector<size_t>& indices) const;

  /// Deep copy (features are value-copied so repairs don't alias).
  Dataset Clone() const { return *this; }

 private:
  common::Matrix features_;
  std::vector<int> s_;
  std::vector<int> u_;
  std::vector<int> y_;
  std::vector<std::string> feature_names_;
  size_t s_levels_ = 2;
  size_t u_levels_ = 2;
};

/// Randomly splits a dataset into a research set of `n_research` rows and an
/// archive with the remainder, mirroring the paper's small-research /
/// large-archive regime (n_R << n_A). Returns InvalidArgument when
/// `n_research` is 0 or >= dataset size.
common::Result<std::pair<Dataset, Dataset>> SplitResearchArchive(const Dataset& dataset,
                                                                 size_t n_research,
                                                                 common::Rng& rng);

}  // namespace otfair::data

#endif  // OTFAIR_DATA_DATASET_H_
