#ifndef OTFAIR_DATA_CSV_H_
#define OTFAIR_DATA_CSV_H_

#include <string>

#include "common/result.h"
#include "common/status.h"
#include "data/dataset.h"

namespace otfair::data {

/// CSV persistence for datasets.
///
/// File layout: a header row `s,u[,y],<feature names...>` followed by one
/// row per record. `s` and `u` are non-negative categorical levels
/// (0, 1, ..., L-1); `y`, when present, is 0/1; features are decimal
/// doubles. This is the interchange format for loading externally prepared
/// data (e.g. a preprocessed copy of the genuine UCI Adult file) into the
/// repair pipeline.
///
/// When a dataset's declared level counts exceed what inference would
/// recover from the labels (an unobserved top level, or |U| = 1), an
/// optional first line `# s_levels=K u_levels=M` persists them; binary-era
/// files never need (and never get) the comment, so their byte layout is
/// unchanged.

/// Writes `dataset` to `path`, overwriting any existing file.
common::Status WriteCsv(const Dataset& dataset, const std::string& path);

/// Reads a dataset from `path`. The header must start with `s,u`
/// (optionally followed by `y`), and every row must parse as numbers with
/// non-negative integer s/u levels (binary y). Level counts come from the
/// `# s_levels=.. u_levels=..` comment when present, otherwise they are
/// inferred from the data (max label + 1, floored at 2), matching
/// Dataset::Create.
common::Result<Dataset> ReadCsv(const std::string& path);

}  // namespace otfair::data

#endif  // OTFAIR_DATA_CSV_H_
