#ifndef OTFAIR_DATA_CSV_H_
#define OTFAIR_DATA_CSV_H_

#include <string>

#include "common/result.h"
#include "common/status.h"
#include "data/dataset.h"

namespace otfair::data {

/// CSV persistence for datasets.
///
/// File layout: a header row `s,u[,y],<feature names...>` followed by one
/// row per record. `s`, `u` (and `y` when present) are 0/1; features are
/// decimal doubles. This is the interchange format for loading externally
/// prepared data (e.g. a preprocessed copy of the genuine UCI Adult file)
/// into the repair pipeline.

/// Writes `dataset` to `path`, overwriting any existing file.
common::Status WriteCsv(const Dataset& dataset, const std::string& path);

/// Reads a dataset from `path`. The header must start with `s,u`
/// (optionally followed by `y`), and every row must parse as numbers with
/// binary labels.
common::Result<Dataset> ReadCsv(const std::string& path);

}  // namespace otfair::data

#endif  // OTFAIR_DATA_CSV_H_
