#include "data/adult_like.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/matrix.h"
#include "common/status.h"

namespace otfair::data {

using common::Matrix;
using common::Result;
using common::Rng;
using common::Status;

namespace {

/// Marsaglia–Tsang gamma sampler; shape > 0, scale > 0.
double SampleGamma(Rng& rng, double shape, double scale) {
  OTFAIR_CHECK_GT(shape, 0.0);
  if (shape < 1.0) {
    // Boost to shape + 1 and thin with U^(1/shape).
    const double g = SampleGamma(rng, shape + 1.0, 1.0);
    const double u = std::max(rng.Uniform(), 1e-300);
    return g * std::pow(u, 1.0 / shape) * scale;
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = rng.Normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    const double u = rng.Uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (std::log(std::max(u, 1e-300)) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
      return d * v * scale;
  }
}

/// Per-(u, s) generating parameters. Values calibrated against the
/// published UCI Adult marginals (see header comment).
struct GroupParams {
  double age_mean;   // years; gamma-shifted from 17
  double age_sd;
  double w_parttime;  // hours-mixture weights (normalized at use)
  double w_spike40;
  double w_overtime;
  double parttime_mean;
  double overtime_mean;
};

GroupParams ParamsFor(int u, int s, double drift) {
  GroupParams p{};
  if (u == 0 && s == 0) {            // non-college women
    p = {36.5, 13.5, 0.35, 0.45, 0.20, 24.0, 50.0};
  } else if (u == 0 && s == 1) {     // non-college men
    p = {38.5, 13.5, 0.15, 0.50, 0.35, 26.0, 52.0};
  } else if (u == 1 && s == 0) {     // college women
    p = {39.5, 12.5, 0.20, 0.50, 0.30, 26.0, 52.0};
  } else {                           // college men
    p = {42.0, 12.5, 0.10, 0.45, 0.45, 28.0, 55.0};
  }
  // Archive drift: population slightly older, slightly more overtime.
  p.age_mean += 2.0 * drift;
  p.w_overtime += 0.08 * drift;
  p.w_spike40 -= 0.04 * drift;
  p.w_parttime -= 0.04 * drift;
  p.w_parttime = std::max(p.w_parttime, 0.01);
  p.w_spike40 = std::max(p.w_spike40, 0.01);
  return p;
}

/// Multi-level parameters: bilinear interpolation of the four calibrated
/// binary corners over (uf, sf) = (u/(|U|-1), s/(|S|-1)). At the binary
/// corners the interpolated values agree with ParamsFor up to roundoff;
/// the binary generator still calls ParamsFor directly so its output stays
/// bit-identical.
GroupParams ParamsForLevels(double uf, double sf, double drift) {
  auto bilerp = [&](double p00, double p01, double p10, double p11) {
    return (1.0 - uf) * ((1.0 - sf) * p00 + sf * p01) +
           uf * ((1.0 - sf) * p10 + sf * p11);
  };
  GroupParams p{};
  p.age_mean = bilerp(36.5, 38.5, 39.5, 42.0);
  p.age_sd = bilerp(13.5, 13.5, 12.5, 12.5);
  p.w_parttime = bilerp(0.35, 0.15, 0.20, 0.10);
  p.w_spike40 = bilerp(0.45, 0.50, 0.50, 0.45);
  p.w_overtime = bilerp(0.20, 0.35, 0.30, 0.45);
  p.parttime_mean = bilerp(24.0, 26.0, 26.0, 28.0);
  p.overtime_mean = bilerp(50.0, 52.0, 52.0, 55.0);
  p.age_mean += 2.0 * drift;
  p.w_overtime += 0.08 * drift;
  p.w_spike40 -= 0.04 * drift;
  p.w_parttime -= 0.04 * drift;
  p.w_parttime = std::max(p.w_parttime, 0.01);
  p.w_spike40 = std::max(p.w_spike40, 0.01);
  return p;
}

/// Geometric-odds level prior: weight_j ∝ odds^j, normalized. odds > 1
/// tilts mass toward the higher levels (as Adult tilts toward s = 1).
std::vector<double> GeometricLevelPrior(size_t levels, double odds) {
  std::vector<double> w(levels);
  double total = 0.0;
  double cur = 1.0;
  for (size_t j = 0; j < levels; ++j) {
    w[j] = cur;
    total += cur;
    cur *= odds;
  }
  for (double& v : w) v /= total;
  return w;
}

double SampleAge(Rng& rng, const GroupParams& p) {
  // Shifted gamma: age = 17 + Gamma(shape, scale) with matched mean/sd.
  const double offset_mean = p.age_mean - 17.0;
  const double shape = (offset_mean / p.age_sd) * (offset_mean / p.age_sd);
  const double scale = p.age_sd * p.age_sd / offset_mean;
  const double age = 17.0 + SampleGamma(rng, shape, scale);
  return std::clamp(age, 17.0, 90.0);
}

double SampleHours(Rng& rng, const GroupParams& p) {
  const double total = p.w_parttime + p.w_spike40 + p.w_overtime;
  const double pick = rng.Uniform() * total;
  double hours;
  if (pick < p.w_parttime) {
    hours = rng.Normal(p.parttime_mean, 7.0);
  } else if (pick < p.w_parttime + p.w_spike40) {
    hours = rng.Normal(40.0, 1.5);
  } else {
    hours = rng.Normal(p.overtime_mean, 9.0);
  }
  return std::clamp(hours, 1.0, 99.0);
}

/// Income model: logistic in (age, hours, u, s), calibrated to ~24% positive
/// rate overall with the male/college premiums Adult exhibits. `uf`/`sf`
/// are the level fractions u/(|U|-1), s/(|S|-1) — identical to the raw
/// labels in the binary case.
int SampleOutcome(Rng& rng, double age, double hours, double uf, double sf) {
  const double z = -7.2 + 0.055 * age + 0.050 * hours + 1.15 * uf + 0.85 * sf;
  const double prob = 1.0 / (1.0 + std::exp(-z));
  return rng.Bernoulli(prob) ? 1 : 0;
}

}  // namespace

Result<Dataset> GenerateAdultLike(size_t n, Rng& rng, const AdultLikeOptions& options) {
  if (n == 0) return Status::InvalidArgument("n must be positive");
  if (!(options.drift >= 0.0 && options.drift <= 1.0))
    return Status::InvalidArgument("drift must lie in [0, 1]");
  if (options.s_levels < 2 || options.u_levels < 2)
    return Status::InvalidArgument("s_levels and u_levels must be >= 2");

  constexpr double kProbU1 = 0.27;
  constexpr double kProbS1GivenU0 = 0.64;
  constexpr double kProbS1GivenU1 = 0.72;

  const bool binary = options.s_levels == 2 && options.u_levels == 2;
  const size_t s_levels = options.s_levels;
  const size_t u_levels = options.u_levels;
  // Multi-level priors: u tilts toward level 0 (non-college majority), s|u
  // toward the top level with college-increasing odds — the same direction
  // as the published binary marginals.
  std::vector<double> prior_u;
  std::vector<std::vector<double>> prior_s_given_u;
  if (!binary) {
    prior_u = GeometricLevelPrior(u_levels, kProbU1 / (1.0 - kProbU1));
    prior_s_given_u.resize(u_levels);
    for (size_t m = 0; m < u_levels; ++m) {
      const double uf = static_cast<double>(m) / static_cast<double>(u_levels - 1);
      const double pr_s_top = kProbS1GivenU0 + (kProbS1GivenU1 - kProbS1GivenU0) * uf;
      prior_s_given_u[m] = GeometricLevelPrior(s_levels, pr_s_top / (1.0 - pr_s_top));
    }
  }

  Matrix features(n, 2);
  std::vector<int> s(n);
  std::vector<int> u(n);
  std::vector<int> y;
  if (options.with_outcome) y.resize(n);

  for (size_t i = 0; i < n; ++i) {
    GroupParams params;
    if (binary) {
      // The paper's binary path, preserved bit-for-bit.
      u[i] = rng.Bernoulli(kProbU1) ? 1 : 0;
      s[i] = rng.Bernoulli(u[i] ? kProbS1GivenU1 : kProbS1GivenU0) ? 1 : 0;
      params = ParamsFor(u[i], s[i], options.drift);
    } else {
      u[i] = static_cast<int>(rng.Categorical(prior_u));
      s[i] = static_cast<int>(rng.Categorical(prior_s_given_u[static_cast<size_t>(u[i])]));
      params = ParamsForLevels(
          static_cast<double>(u[i]) / static_cast<double>(u_levels - 1),
          static_cast<double>(s[i]) / static_cast<double>(s_levels - 1), options.drift);
    }
    features(i, 0) = SampleAge(rng, params);
    features(i, 1) = SampleHours(rng, params);
    if (options.integer_valued) {
      features(i, 0) = std::floor(features(i, 0));
      features(i, 1) = std::round(features(i, 1));
    }
    if (options.with_outcome)
      y[i] = SampleOutcome(rng, features(i, 0), features(i, 1),
                           static_cast<double>(u[i]) / static_cast<double>(u_levels - 1),
                           static_cast<double>(s[i]) / static_cast<double>(s_levels - 1));
  }

  return Dataset::Create(std::move(features), std::move(s), std::move(u),
                         {"age", "hours_per_week"}, std::move(y), s_levels, u_levels);
}

}  // namespace otfair::data
