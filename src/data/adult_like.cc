#include "data/adult_like.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/matrix.h"
#include "common/status.h"

namespace otfair::data {

using common::Matrix;
using common::Result;
using common::Rng;
using common::Status;

namespace {

/// Marsaglia–Tsang gamma sampler; shape > 0, scale > 0.
double SampleGamma(Rng& rng, double shape, double scale) {
  OTFAIR_CHECK_GT(shape, 0.0);
  if (shape < 1.0) {
    // Boost to shape + 1 and thin with U^(1/shape).
    const double g = SampleGamma(rng, shape + 1.0, 1.0);
    const double u = std::max(rng.Uniform(), 1e-300);
    return g * std::pow(u, 1.0 / shape) * scale;
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = rng.Normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    const double u = rng.Uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (std::log(std::max(u, 1e-300)) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
      return d * v * scale;
  }
}

/// Per-(u, s) generating parameters. Values calibrated against the
/// published UCI Adult marginals (see header comment).
struct GroupParams {
  double age_mean;   // years; gamma-shifted from 17
  double age_sd;
  double w_parttime;  // hours-mixture weights (normalized at use)
  double w_spike40;
  double w_overtime;
  double parttime_mean;
  double overtime_mean;
};

GroupParams ParamsFor(int u, int s, double drift) {
  GroupParams p{};
  if (u == 0 && s == 0) {            // non-college women
    p = {36.5, 13.5, 0.35, 0.45, 0.20, 24.0, 50.0};
  } else if (u == 0 && s == 1) {     // non-college men
    p = {38.5, 13.5, 0.15, 0.50, 0.35, 26.0, 52.0};
  } else if (u == 1 && s == 0) {     // college women
    p = {39.5, 12.5, 0.20, 0.50, 0.30, 26.0, 52.0};
  } else {                           // college men
    p = {42.0, 12.5, 0.10, 0.45, 0.45, 28.0, 55.0};
  }
  // Archive drift: population slightly older, slightly more overtime.
  p.age_mean += 2.0 * drift;
  p.w_overtime += 0.08 * drift;
  p.w_spike40 -= 0.04 * drift;
  p.w_parttime -= 0.04 * drift;
  p.w_parttime = std::max(p.w_parttime, 0.01);
  p.w_spike40 = std::max(p.w_spike40, 0.01);
  return p;
}

double SampleAge(Rng& rng, const GroupParams& p) {
  // Shifted gamma: age = 17 + Gamma(shape, scale) with matched mean/sd.
  const double offset_mean = p.age_mean - 17.0;
  const double shape = (offset_mean / p.age_sd) * (offset_mean / p.age_sd);
  const double scale = p.age_sd * p.age_sd / offset_mean;
  const double age = 17.0 + SampleGamma(rng, shape, scale);
  return std::clamp(age, 17.0, 90.0);
}

double SampleHours(Rng& rng, const GroupParams& p) {
  const double total = p.w_parttime + p.w_spike40 + p.w_overtime;
  const double pick = rng.Uniform() * total;
  double hours;
  if (pick < p.w_parttime) {
    hours = rng.Normal(p.parttime_mean, 7.0);
  } else if (pick < p.w_parttime + p.w_spike40) {
    hours = rng.Normal(40.0, 1.5);
  } else {
    hours = rng.Normal(p.overtime_mean, 9.0);
  }
  return std::clamp(hours, 1.0, 99.0);
}

/// Income model: logistic in (age, hours, u, s), calibrated to ~24% positive
/// rate overall with the male/college premiums Adult exhibits.
int SampleOutcome(Rng& rng, double age, double hours, int u, int s) {
  const double z = -7.2 + 0.055 * age + 0.050 * hours + 1.15 * u + 0.85 * s;
  const double prob = 1.0 / (1.0 + std::exp(-z));
  return rng.Bernoulli(prob) ? 1 : 0;
}

}  // namespace

Result<Dataset> GenerateAdultLike(size_t n, Rng& rng, const AdultLikeOptions& options) {
  if (n == 0) return Status::InvalidArgument("n must be positive");
  if (!(options.drift >= 0.0 && options.drift <= 1.0))
    return Status::InvalidArgument("drift must lie in [0, 1]");

  constexpr double kProbU1 = 0.27;
  constexpr double kProbS1GivenU0 = 0.64;
  constexpr double kProbS1GivenU1 = 0.72;

  Matrix features(n, 2);
  std::vector<int> s(n);
  std::vector<int> u(n);
  std::vector<int> y;
  if (options.with_outcome) y.resize(n);

  for (size_t i = 0; i < n; ++i) {
    u[i] = rng.Bernoulli(kProbU1) ? 1 : 0;
    s[i] = rng.Bernoulli(u[i] ? kProbS1GivenU1 : kProbS1GivenU0) ? 1 : 0;
    const GroupParams params = ParamsFor(u[i], s[i], options.drift);
    features(i, 0) = SampleAge(rng, params);
    features(i, 1) = SampleHours(rng, params);
    if (options.integer_valued) {
      features(i, 0) = std::floor(features(i, 0));
      features(i, 1) = std::round(features(i, 1));
    }
    if (options.with_outcome)
      y[i] = SampleOutcome(rng, features(i, 0), features(i, 1), u[i], s[i]);
  }

  return Dataset::Create(std::move(features), std::move(s), std::move(u),
                         {"age", "hours_per_week"}, std::move(y));
}

}  // namespace otfair::data
