#!/usr/bin/env python3
"""Regenerates tests/data/corrupt/ from pristine artifacts.

Usage: make_corrupt_corpus.py <plan.bin> <checkpoint.otcp> <out_dir>

Derives the structured corruption corpus the regression test
(tests/integration/corrupt_corpus_test.cc) asserts over: every derived
file must be rejected by the matching reader with a clean Status. The
classes mirror what the fuzzers and the chaos harness exercise —
truncation (torn write), bit flips (media corruption), oversize (trailing
junk after a valid payload), header forgery (magic/version), length-field
inflation (huge allocation guard), and outright garbage.

Mutations are deterministic (fixed offsets, fixed XOR masks): rerunning on
the same inputs reproduces the corpus byte for byte.
"""

import pathlib
import struct
import sys


def mutations(data: bytes, huge_offset: int):
    n = len(data)
    # Torn writes: a header-only stump, a mid-header cut, mid-payload cuts.
    yield "trunc_header", data[:6]
    yield "trunc_quarter", data[: n // 4]
    yield "trunc_half", data[: n // 2]
    yield "trunc_tail", data[: n - 1]
    # Bit flips spread across header and payload.
    for tag, pos in (("flip_magic", 1), ("flip_early", 24),
                     ("flip_mid", n // 2), ("flip_late", n - 2)):
        flipped = bytearray(data)
        flipped[pos] ^= 0x40
        yield tag, bytes(flipped)
    # Oversize: valid file plus trailing junk (size/CRC field must catch it).
    yield "oversize", data + b"\xde\xad\xbe\xef" * 8
    # Header forgery.
    wrong_magic = bytearray(data)
    wrong_magic[0:4] = b"NOPE"
    yield "wrong_magic", bytes(wrong_magic)
    wrong_version = bytearray(data)
    wrong_version[4:8] = struct.pack("<I", 0x7FFFFFFF)
    yield "wrong_version", bytes(wrong_version)
    # Length-field inflation: a u64 length field becomes huge. The readers
    # must bounds-check before allocating, not after — both formats carry a
    # CRC (plan since v4) so any offset is also a checksum break, but the
    # plan offset still lands on a real length field to prove the
    # allocation guard fires even when the parse runs ahead of the CRC.
    inflated = bytearray(data)
    inflated[huge_offset : huge_offset + 8] = struct.pack("<Q", 1 << 60)
    yield "huge_length", bytes(inflated)
    # Garbage that never had the format.
    yield "empty", b""
    yield "zeros", b"\x00" * 256
    yield "text", b"this is not a binary artifact\n" * 4


def main() -> int:
    if len(sys.argv) != 4:
        print(__doc__.strip().splitlines()[2], file=sys.stderr)
        return 2
    plan = pathlib.Path(sys.argv[1]).read_bytes()
    checkpoint = pathlib.Path(sys.argv[2]).read_bytes()
    out = pathlib.Path(sys.argv[3])
    out.mkdir(parents=True, exist_ok=True)
    count = 0
    # 48 = the first feature-name length field of a v3/v4 plan with |S| = 2
    # (magic 4 + version 4 + dim u64 + target_t f64 + u_levels u32 +
    #  s_levels u32 + two lambda f64s).
    for prefix, data, huge_offset in (("plan", plan, 48),
                                      ("checkpoint", checkpoint, len(checkpoint) // 3)):
        for tag, mutated in mutations(data, huge_offset):
            (out / f"{prefix}_{tag}.bin").write_bytes(mutated)
            count += 1
    print(f"wrote {count} corpus files to {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
