#!/usr/bin/env python3
"""Validates otfair observability artifacts.

Two independent checks, either or both:

  --trace FILE   Chrome trace-event JSON written by `--trace=FILE`.
                 Must parse, every event must be a complete ("X") span
                 with the expected fields, and the spans of each thread
                 must be well-nested (RAII scopes cannot partially
                 overlap; a violation means a corrupt drain).
                 --require-span NAME[,NAME...] additionally asserts the
                 named spans appear at least once.

  --prom FILE    Prometheus text exposition written by `--prom-dump` or
                 the `metrics --prom` verb. Checked line-by-line against
                 the text exposition format 0.0.4 grammar, plus
                 structural rules: one HELP/TYPE per metric, TYPE before
                 samples, histogram buckets cumulative with a +Inf
                 bucket matching _count, and _sum/_count present.

Exits 0 when every requested check passes, 1 with a diagnostic on the
first failure. No third-party dependencies (CI runs it with a stock
python3).
"""

import argparse
import json
import re
import sys

METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# A sample line: name[{labels}] value [timestamp]
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)"
    r"(?: (?P<ts>-?[0-9]+))?$"
)
LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
VALUE_RE = re.compile(r"^[+-]?(?:[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?|Inf|NaN)$")


def fail(message):
    print(f"check_observability: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


# --- trace -------------------------------------------------------------------


def check_trace(path, required_spans):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: not parseable JSON: {e}")
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: missing top-level traceEvents")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail(f"{path}: traceEvents is not a list")

    by_tid = {}
    for i, ev in enumerate(events):
        for key, kind in (
            ("name", str),
            ("ph", str),
            ("pid", int),
            ("tid", int),
            ("ts", (int, float)),
            ("dur", (int, float)),
        ):
            if key not in ev or not isinstance(ev[key], kind):
                fail(f"{path}: event {i} missing/bad field '{key}': {ev}")
        if ev["ph"] != "X":
            fail(f"{path}: event {i} has ph={ev['ph']!r}, expected complete ('X')")
        if ev["ts"] < 0 or ev["dur"] < 0:
            fail(f"{path}: event {i} has negative ts/dur: {ev}")
        by_tid.setdefault(ev["tid"], []).append(ev)

    # Well-nestedness per thread: RAII spans from one thread either nest
    # or are disjoint. Sweep in (start asc, end desc) order with a stack
    # of open end-times; a child extending past its innermost open
    # parent is a partial overlap.
    for tid, spans in by_tid.items():
        spans.sort(key=lambda e: (e["ts"], -(e["ts"] + e["dur"])))
        stack = []
        for ev in spans:
            start, end = ev["ts"], ev["ts"] + ev["dur"]
            while stack and stack[-1] <= start:
                stack.pop()
            if stack and end > stack[-1]:
                fail(
                    f"{path}: tid {tid}: span '{ev['name']}' "
                    f"[{start}, {end}] partially overlaps an enclosing span "
                    f"ending at {stack[-1]}"
                )
            stack.append(end)

    names = {ev["name"] for ev in events}
    missing = [s for s in required_spans if s not in names]
    if missing:
        fail(f"{path}: required spans never appeared: {', '.join(missing)}")
    print(
        f"check_observability: trace OK: {len(events)} events, "
        f"{len(by_tid)} threads, {len(names)} distinct spans"
    )


# --- prometheus --------------------------------------------------------------


def parse_labels(raw):
    """Returns the label dict, or None if `raw` is not a valid label body."""
    if raw.strip() == "":
        return {}
    pos = 0
    labels = {}
    while pos < len(raw):
        m = LABEL_PAIR_RE.match(raw, pos)
        if not m:
            return None
        labels[m.group(1)] = m.group(2)
        pos = m.end()
        if pos < len(raw):
            if raw[pos] != ",":
                return None
            pos += 1
    return labels


def check_prom(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            text = f.read()
    except OSError as e:
        fail(f"{path}: unreadable: {e}")
    if text and not text.endswith("\n"):
        fail(f"{path}: final line not newline-terminated")

    helped, typed, types = set(), set(), {}
    sampled = set()
    samples = {}  # base metric name -> [(labels, value)]
    for lineno, line in enumerate(text.splitlines(), 1):
        if line == "":
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] in ("HELP", "TYPE"):
                if len(parts) < 3 or not METRIC_NAME_RE.match(parts[2]):
                    fail(f"{path}:{lineno}: malformed {parts[1]} line: {line!r}")
                name = parts[2]
                if parts[1] == "HELP":
                    if name in helped:
                        fail(f"{path}:{lineno}: second HELP for {name}")
                    helped.add(name)
                else:
                    if name in typed:
                        fail(f"{path}:{lineno}: second TYPE for {name}")
                    if name in sampled:
                        fail(f"{path}:{lineno}: TYPE for {name} after its samples")
                    if len(parts) < 4 or parts[3] not in (
                        "counter",
                        "gauge",
                        "histogram",
                        "summary",
                        "untyped",
                    ):
                        fail(f"{path}:{lineno}: bad TYPE value: {line!r}")
                    typed.add(name)
                    types[name] = parts[3]
            # Other comments (including the protocol's "# EOF") are legal.
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            fail(f"{path}:{lineno}: not a valid sample line: {line!r}")
        name, raw_labels, value = m.group("name"), m.group("labels"), m.group("value")
        labels = parse_labels(raw_labels or "")
        if labels is None:
            fail(f"{path}:{lineno}: malformed labels: {line!r}")
        for label in labels:
            if not LABEL_NAME_RE.match(label):
                fail(f"{path}:{lineno}: bad label name {label!r}")
        if not VALUE_RE.match(value):
            fail(f"{path}:{lineno}: bad sample value {value!r}")
        # Histogram series (_bucket/_sum/_count) belong to their base
        # metric's TYPE declaration.
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                base = name[: -len(suffix)]
                break
        if base not in types:
            fail(f"{path}:{lineno}: sample for {name} without a TYPE for {base}")
        sampled.add(base)
        samples.setdefault(base, []).append((name, labels, value))

    for name, kind in types.items():
        if kind != "histogram":
            continue
        series = samples.get(name, [])
        buckets = [
            (lb["le"], float(v))
            for n, lb, v in series
            if n == name + "_bucket" and "le" in lb
        ]
        if not buckets:
            fail(f"{path}: histogram {name} has no _bucket samples")
        if buckets[-1][0] != "+Inf":
            fail(f"{path}: histogram {name} last bucket le={buckets[-1][0]!r}, want +Inf")
        values = [v for _, v in buckets]
        if any(b > a for b, a in zip(values, values[1:])):
            fail(f"{path}: histogram {name} buckets are not cumulative")
        counts = [float(v) for n, _, v in series if n == name + "_count"]
        if not counts:
            fail(f"{path}: histogram {name} missing _count")
        if not any(n == name + "_sum" for n, _, _ in series):
            fail(f"{path}: histogram {name} missing _sum")
        if counts[0] != values[-1]:
            fail(
                f"{path}: histogram {name} +Inf bucket {values[-1]} != "
                f"_count {counts[0]}"
            )

    print(
        f"check_observability: prom OK: {len(types)} typed metrics, "
        f"{sum(len(v) for v in samples.values())} samples"
    )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", help="Chrome trace JSON to validate")
    parser.add_argument(
        "--require-span",
        default="",
        help="comma-separated span names that must appear in --trace",
    )
    parser.add_argument("--prom", help="Prometheus exposition file to validate")
    args = parser.parse_args()
    if not args.trace and not args.prom:
        parser.error("nothing to check: pass --trace and/or --prom")
    if args.trace:
        required = [s for s in args.require_span.split(",") if s]
        check_trace(args.trace, required)
    if args.prom:
        check_prom(args.prom)


if __name__ == "__main__":
    main()
