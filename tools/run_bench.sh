#!/usr/bin/env bash
# Builds and runs the perf trajectory harness (bench/perf_bench.cpp),
# emitting the JSON snapshot that BENCH_*.json files are taken from.
#
# Usage:
#   tools/run_bench.sh [--smoke] [output.json] [extra perf_bench flags...]
#
# --smoke runs tiny sizes (a CI harness check, not a measurement) and
# defaults the output into the build tree; otherwise the output defaults
# to BENCH_perf.json in the repo root. Benchmarks must be compiled with
# optimization: this script configures CMAKE_BUILD_TYPE=Release (the
# repo's default build type).
#
# The legacy Google-Benchmark microbenches (ot_microbench etc.) still
# build when libbenchmark is installed; run those binaries directly for
# per-op microbenchmarks.
#
# Methodology for committed BENCH_*.json snapshots (the numbers cited
# in README "Performance" and in perf-PR claims):
#   * Interleaved min-of-N: run the harness several times (>= 3
#     invocations of --repeats=3, i.e. >= 9 timed runs per row) and take
#     the per-row minimum across invocations. Interleaving whole
#     invocations — rather than one long run per benchmark — spreads
#     thermal/frequency drift and background noise across every row
#     instead of biasing whichever row ran last. Merge with e.g.:
#       for i in 1 2 3; do tools/run_bench.sh /tmp/bench_$i.json; done
#       # then take the min wall_ms per (name, threads) across the three
#   * Min, not mean: wall-clock noise on a quiet machine is one-sided
#     (interference only adds time), so the minimum is the best
#     estimate of the true cost of the code.
#   * Same build type for every snapshot: Release, default flags — no
#     -march=native — so committed trajectories compare codegen the
#     repo actually ships. The SIMD kernels select AVX2/NEON at runtime
#     regardless of flags; pass --no_simd to measure the scalar
#     baseline, and check the "simd_isa" field in the JSON meta to see
#     what actually dispatched.
#   * Paired rows isolate one effect each: repair_throughput vs
#     repair_throughput_soa (memory layout), sinkhorn_standard across
#     snapshots (kernel vectorization), table_build vs
#     table_build_dense (sparsity). Compare like against like.
#   * serve_net_* rows run real TCP loadgen client threads against the
#     in-process epoll server, so they contend with the server for this
#     machine's cores. On a many-core host the 64/256-connection rows
#     show aggregate scaling over single-connection stdio serve; on a
#     1-2 core host they price the protocol + syscall overhead instead
#     — read them next to the "hardware_threads" field in the JSON meta.

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${repo_root}/build"

smoke=0
if [[ "${1:-}" == "--smoke" ]]; then
  smoke=1
  shift
fi

if [[ ${smoke} -eq 1 ]]; then
  out="${1:-${build_dir}/BENCH_smoke.json}"
else
  out="${1:-${repo_root}/BENCH_perf.json}"
fi
shift || true

cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "${build_dir}" -j --target perf_bench >/dev/null

args=("--out=${out}")
if [[ ${smoke} -eq 1 ]]; then
  args+=("--smoke" "--threads=1,2" "--repeats=1")
fi

"${build_dir}/bench/perf_bench" "${args[@]}" "$@"
