#!/usr/bin/env bash
# Builds and runs the OT microbench, emitting Google-Benchmark JSON for
# trajectory tracking (future BENCH_*.json snapshots).
#
# Usage:
#   tools/run_bench.sh [output.json] [extra benchmark flags...]
#
# Defaults to BENCH_ot_microbench.json in the repo root. Requires Google
# Benchmark to be installed (the CMake build skips the microbench targets
# without it, and this script then fails with a clear message).

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${repo_root}/build"
out="${1:-${repo_root}/BENCH_ot_microbench.json}"
shift || true

cmake -B "${build_dir}" -S "${repo_root}" >/dev/null
cmake --build "${build_dir}" -j --target ot_microbench 2>/dev/null || {
  echo "error: ot_microbench target unavailable — is Google Benchmark installed?" >&2
  exit 1
}

"${build_dir}/bench/ot_microbench" \
  --benchmark_format=json \
  --benchmark_out="${out}" \
  --benchmark_out_format=json \
  "$@" >/dev/null

echo "wrote ${out}"
