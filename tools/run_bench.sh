#!/usr/bin/env bash
# Builds and runs the perf trajectory harness (bench/perf_bench.cpp),
# emitting the JSON snapshot that BENCH_*.json files are taken from.
#
# Usage:
#   tools/run_bench.sh [--smoke] [output.json] [extra perf_bench flags...]
#
# --smoke runs tiny sizes (a CI harness check, not a measurement) and
# defaults the output into the build tree; otherwise the output defaults
# to BENCH_perf.json in the repo root. Benchmarks must be compiled with
# optimization: this script configures CMAKE_BUILD_TYPE=Release (the
# repo's default build type).
#
# The legacy Google-Benchmark microbenches (ot_microbench etc.) still
# build when libbenchmark is installed; run those binaries directly for
# per-op microbenchmarks.

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${repo_root}/build"

smoke=0
if [[ "${1:-}" == "--smoke" ]]; then
  smoke=1
  shift
fi

if [[ ${smoke} -eq 1 ]]; then
  out="${1:-${build_dir}/BENCH_smoke.json}"
else
  out="${1:-${repo_root}/BENCH_perf.json}"
fi
shift || true

cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "${build_dir}" -j --target perf_bench >/dev/null

args=("--out=${out}")
if [[ ${smoke} -eq 1 ]]; then
  args+=("--smoke" "--threads=1,2" "--repeats=1")
fi

"${build_dir}/bench/perf_bench" "${args[@]}" "$@"
