// otfair — command-line front end for the repair pipeline.
//
// Subcommands:
//   design    fit a repair plan on a labelled research CSV and save it
//   repair    apply a saved plan to an archive CSV (hard, estimated or
//             Monge-map modes)
//   serve     long-lived serving loop: micro-batched repairs over a
//             newline protocol on stdin/stdout, plan hot-swap, drift
//             health (plus a --replay self-driving load mode)
//   inspect   print a plan artifact's structure and a CSV's fairness
//             report (--json for machine-readable output)
//   drift     compare an archive CSV against a plan's design
//             distribution (--json for machine-readable output)
//   simulate  draw a synthetic labelled dataset (the paper's Gaussian
//             mixture) — fixtures for scripts, smoke tests and demos
//
// `otfair <command> --help` prints the command's flags. Unknown commands
// and missing required flags exit 2; operational failures exit 1; drift
// detection exits 3.
//
// CSV layout: header `s,u[,y],<feature names...>`, binary labels.

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/file_util.h"
#include "common/flags.h"
#include "common/json_writer.h"
#include "common/parallel.h"
#include "common/simd.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/designer.h"
#include "core/drift_monitor.h"
#include "core/label_estimator.h"
#include "core/pipeline.h"
#include "core/quantile_repair.h"
#include "core/repairer.h"
#include "data/csv.h"
#include "fairness/report.h"
#include "net/loadgen.h"
#include "net/server.h"
#include "obs/trace.h"
#include "ot/solver.h"
#include "serve/batcher.h"
#include "serve/checkpointer.h"
#include "serve/metrics.h"
#include "serve/protocol.h"
#include "serve/redesigner.h"
#include "serve/repair_service.h"
#include "sim/gaussian_mixture.h"

namespace {

using otfair::common::FlagParser;
using otfair::common::JsonWriter;
using otfair::common::Status;

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// Set (to the signal number) by SIGTERM/SIGINT during `serve`; both serve
/// modes poll it and drain: stop accepting, flush in-flight rows, write a
/// final checkpoint, exit 0.
volatile std::sig_atomic_t g_drain_signal = 0;

void HandleDrainSignal(int sig) { g_drain_signal = sig; }

/// Installs the drain handlers WITHOUT SA_RESTART: the stdio loop blocks
/// in getline(), which must come back with EINTR for the drain to start
/// promptly instead of waiting for the next input line.
void InstallDrainHandlers() {
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = HandleDrainSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
}

/// Resolves the shared `--threads` flag: absent -> 0 (process default,
/// i.e. OTFAIR_THREADS or hardware concurrency); present but < 1 -> error.
/// On success the value is also installed as the process-wide default so
/// every parallel region (including solver internals) honours it.
otfair::common::Result<int> ResolveThreadsFlag(const FlagParser& flags) {
  if (!flags.Has("threads")) return 0;
  const int threads = flags.GetInt("threads", 0);
  if (threads < 1)
    return Status::InvalidArgument("--threads must be >= 1 (got " +
                                   std::to_string(threads) + ")");
  otfair::common::parallel::SetThreadCount(static_cast<size_t>(threads));
  return threads;
}

std::string SolverNames() {
  std::string solvers;
  for (const std::string& name : otfair::ot::SolverRegistry::Global().Names()) {
    if (!solvers.empty()) solvers += "|";
    solvers += name;
  }
  return solvers;
}

// --- per-command usage blocks ----------------------------------------------

void PrintDesignUsage(std::FILE* out) {
  std::fprintf(out,
               "usage: otfair design --research=R.csv --plan=P.bin [flags]\n"
               "  Fits Algorithm 1 repair plans on a labelled research CSV. The\n"
               "  attribute cardinalities |S|/|U| come from the data (any K-valued\n"
               "  categorical levels 0..K-1); one plan per (u, s, feature) channel.\n"
               "    --research=R.csv   labelled research data (required)\n"
               "    --plan=P.bin       output plan artifact (required)\n"
               "    --n_q=50           support grid resolution\n"
               "    --target_t=0.5     barycentre position t in [0, 1] (binary |S|)\n"
               "    --lambdas=l0,l1,.. barycentric weights, one per s level\n"
               "                       (default: {1-t, t} binary, uniform otherwise)\n"
               "    --solver=%s   OT backend\n"
               "    --epsilon=0.05     Sinkhorn regularization\n"
               "    --threads=N        worker threads\n"
               "    --trace=F.json     write a Chrome trace of the design run\n"
               "                       (per-channel solves, per-Sinkhorn-iteration\n"
               "                       spans; load in Perfetto / chrome://tracing)\n",
               SolverNames().c_str());
}

void PrintRepairUsage(std::FILE* out) {
  std::fprintf(out,
               "usage: otfair repair --plan=P.bin --input=A.csv --output=O.csv [flags]\n"
               "  Applies a saved plan to an archive CSV (Algorithm 2).\n"
               "    --mode=stochastic|mean|quantile   transport mode\n"
               "    --strength=1.0     partial-repair strength in [0, 1]\n"
               "    --seed=N           RNG seed (stochastic mode)\n"
               "    --estimate_labels  estimate archive s-labels (needs --research)\n"
               "    --research=R.csv   research data for label estimation\n"
               "    --threads=N        worker threads (stochastic/mean; quantile is serial)\n");
}

void PrintServeUsage(std::FILE* out) {
  std::fprintf(out,
               "usage: otfair serve --plan=P.bin [flags]\n"
               "  Long-lived repair server. Default mode speaks a newline protocol on\n"
               "  stdin/stdout:\n"
               "    repair <session> <row> <u> <s> <x_1..x_d>   -> ok <session> <row> <y...>\n"
               "    metrics | health                            -> one-line JSON\n"
               "    metrics --prom     -> Prometheus text exposition (\"# EOF\"-terminated)\n"
               "    reload <plan_path>                          -> ok reload <version>\n"
               "    checkpoint                                  -> ok checkpoint <generation>\n"
               "    quit\n"
               "  Flags:\n"
               "    --seed=N           base repair seed (session 0 = offline batch seed)\n"
               "    --mode=stochastic|mean\n"
               "    --strength=1.0     partial-repair strength\n"
               "    --threads=N        repair lanes per batch\n"
               "    --max_batch=256    rows coalesced per micro-batch\n"
               "    --max_wait_us=1000 partial-batch flush deadline\n"
               "    --queue_depth=4096 pending-row bound (backpressure above)\n"
               "    --drift_shards=8   drift accumulator shards\n"
               "    --w1_threshold=0.10 --oor_threshold=0.05  drift thresholds\n"
               "  Replay mode (self-driving load, no sockets):\n"
               "    --replay=A.csv     archive to replay\n"
               "    --sessions=N       concurrent replay sessions\n"
               "  Network mode (TCP, mutually exclusive with --replay):\n"
               "    --listen=PORT      serve the same line protocol over TCP (0 binds\n"
               "                       an ephemeral port, reported on stderr)\n"
               "    --listen-host=IP   IPv4 bind address (default 127.0.0.1)\n"
               "    --net-threads=N    epoll worker threads; each owns a SO_REUSEPORT\n"
               "                       listener and a micro-batcher, and a connection\n"
               "                       lives its whole life on the worker that\n"
               "                       accepted it (session affinity)\n"
               "    --max-conns=4096   connection cap (excess accepts are answered\n"
               "                       with one UNAVAILABLE error line and closed)\n"
               "    --port-file=F      write the bound port to F (for scripts/CI)\n"
               "  Self-healing (drift -> sketch-based redesign -> hot reload):\n"
               "    --self-heal        enable the background redesigner\n"
               "    --sketch_every=16  sketch sampling stride (0 disables sketches)\n"
               "    --heal_poll_ms=200 --heal_cooldown_ms=5000 --heal_retries=3\n"
               "    --heal_backoff_ms=250 --heal_backoff_max_ms=5000\n"
               "    --heal_timeout_ms=30000   per-redesign deadline\n"
               "    --heal_min_channel=32     sketch samples per channel needed\n"
               "    --heal_fresh_wait_ms=2000 wait for post-drift sketches before\n"
               "                       falling back to the pre-trip snapshot\n"
               "    --heal_drain_ms=20000     replay: settle wait before exit\n"
               "    --faults=SPEC      fault injection (also OTFAIR_FAULTS env);\n"
               "                       name[:count] list, see README\n"
               "  Crash safety (checkpoint / recover / drain):\n"
               "    --checkpoint_dir=D        write periodic atomic checkpoints into D\n"
               "    --checkpoint_interval_ms=1000  background checkpoint cadence\n"
               "    --checkpoint_keep=3       generations retained (recovery window)\n"
               "    --recover          start from the newest intact checkpoint in\n"
               "                       --checkpoint_dir (plan, version, drift state,\n"
               "                       sketches; seed/mode/strength come from the\n"
               "                       checkpoint — the bit-identity contract), falling\n"
               "                       back generation-by-generation past corrupt files\n"
               "                       and cold-starting from --plan when none is intact\n"
               "  Observability (tracing compiled in, zero-cost while disabled):\n"
               "    --trace=F.json     collect spans (admission, batch flush, repair,\n"
               "                       reload, checkpoint, redesign episodes); Chrome\n"
               "                       trace JSON written at exit, loads in Perfetto\n"
               "    --prom-dump=F.txt  periodically write the Prometheus text\n"
               "                       exposition to F (atomic rename; final write at\n"
               "                       exit)\n"
               "    --prom-interval-ms=1000  dump cadence\n"
               "  SIGTERM/SIGINT drain gracefully: stop accepting input, flush\n"
               "  in-flight rows, write a final checkpoint, exit 0.\n"
               "  Replay prints metrics and health JSON lines, then exits 0 when\n"
               "  healthy or degraded-but-serving (see the health \"state\" field),\n"
               "  3 when drifted with self-heal disabled or unresolved, 1 on any\n"
               "  dropped/failed row.\n");
}

void PrintLoadgenUsage(std::FILE* out) {
  std::fprintf(out,
               "usage: otfair loadgen --port=P [flags]\n"
               "  TCP load generator for `otfair serve --listen`: N connections\n"
               "  pipeline deterministic repair rows and record client-observed\n"
               "  latency. Exits 0 only when every submitted row came back ok\n"
               "  (zero drops, zero error lines); per-row errors exit 1.\n"
               "    --port=P           server port (required)\n"
               "    --host=127.0.0.1   server address\n"
               "    --connections=1    concurrent client connections\n"
               "    --sessions=N       total sessions, spread over the connections\n"
               "                       (session s rides connection s %% N; default\n"
               "                       one session per connection)\n"
               "    --rows=1000        rows per session (row indices 0..R-1)\n"
               "    --dim=2            features per row (must match the served plan)\n"
               "    --u-levels=2 --s-levels=2  group-label ranges\n"
               "    --window=64        max outstanding rows per connection\n"
               "    --seed=1           synthetic feature stream seed\n"
               "    --timeout_ms=30000 per-connection inactivity bound\n"
               "    --json=F.json      write the result summary as one-line JSON\n"
               "    --csv=F.csv        append the result as a CSV row (header\n"
               "                       written when the file is new)\n"
               "    --verb=V           control mode: send one verb (e.g. health,\n"
               "                       \"metrics --prom\") and print the response\n");
}

void PrintInspectUsage(std::FILE* out) {
  std::fprintf(out,
               "usage: otfair inspect --plan=P.bin | --data=D.csv | --checkpoint=C [--json]\n"
               "  Prints a plan artifact's structure, a CSV's fairness report, or a\n"
               "  serve checkpoint's contents (after full header/CRC/payload\n"
               "  validation — a corrupt file fails with the rejection reason).\n"
               "  JSON output includes \"simd_isa\" (the vector instruction set the\n"
               "  process dispatched to: avx2|neon|scalar), \"trace_available\"\n"
               "  (whether --trace span collection is compiled in),\n"
               "  \"net_available\"/\"net_listen\" (TCP serving support and its\n"
               "  default listen config), and \"metric_names\" (every metric the\n"
               "  serve registry exports).\n"
               "    --json   one-line machine-readable JSON on stdout\n");
}

void PrintDriftUsage(std::FILE* out) {
  std::fprintf(out,
               "usage: otfair drift --plan=P.bin --input=A.csv [--json]\n"
               "  Compares an archive against the plan's design distribution.\n"
               "  Exits 0 when stationary, 3 when drift is detected.\n"
               "    --json   one-line machine-readable JSON on stdout\n");
}

void PrintSimulateUsage(std::FILE* out) {
  std::fprintf(out,
               "usage: otfair simulate --out=D.csv --rows=N [flags]\n"
               "  Draws a labelled dataset from the paper's Gaussian mixture.\n"
               "    --seed=1      RNG seed\n"
               "    --dim=2       feature count (2 = the paper's config)\n"
               "    --shift=0.0   added to every component mean (creates drift)\n"
               "    --shift-at=F  apply --shift only from row floor(F*N) on (F in\n"
               "                  (0, 1)): a mid-stream distribution shift for\n"
               "                  self-heal simulations; rows before the cut are\n"
               "                  bit-identical to an unshifted run\n"
               "    --s-levels=2  protected-attribute levels |S| (2 = the paper's\n"
               "                  binary config, bit-identical to earlier releases)\n"
               "    --u-levels=2  unprotected-attribute levels |U|\n");
}

/// The top-level usage block; `out` distinguishes requested help (stdout,
/// exit 0) from invocation errors (stderr, exit 2).
void PrintUsage(std::FILE* out) {
  std::fprintf(out,
               "usage: otfair <command> [flags]\n"
               "commands:\n"
               "  design    fit repair plans on a research CSV -> plan artifact\n"
               "  repair    apply a plan artifact to an archive CSV\n"
               "  serve     long-lived repair server (stdin/stdout protocol, --replay,\n"
               "            or TCP via --listen)\n"
               "  loadgen   TCP load generator for serve --listen (latency histogram,\n"
               "            CSV/JSON output)\n"
               "  inspect   show a plan artifact or a CSV fairness report\n"
               "  drift     check an archive against the design distribution\n"
               "  simulate  generate a synthetic labelled CSV\n"
               "global flags:\n"
               "  --no-simd   force the scalar kernels (same as OTFAIR_NO_SIMD=1);\n"
               "              output is bit-identical for repair either way\n"
               "run `otfair <command> --help` for the command's flags\n");
}

int Usage() {
  PrintUsage(stderr);
  return 2;
}

/// True when the command asked for its own help; prints it to stdout.
bool WantsHelp(const FlagParser& flags, void (*print)(std::FILE*)) {
  if (!flags.GetBool("help", false)) return false;
  print(stdout);
  return true;
}

/// Resolves `--trace=FILE` and, when present, turns span collection on
/// before the traced work starts. Returns the output path ("" = tracing
/// off); the caller writes the file with WriteTraceFile once the traced
/// work has finished.
std::string MaybeEnableTrace(const FlagParser& flags) {
  const std::string trace_path = flags.GetString("trace", "");
  if (!trace_path.empty()) otfair::obs::TraceCollector::Global().Enable();
  return trace_path;
}

/// Drains every thread ring and writes the Chrome trace-event JSON
/// (Perfetto-loadable). A write failure is a warning, not a run failure:
/// the traced work itself already succeeded.
void WriteTraceFile(const std::string& trace_path) {
  if (trace_path.empty()) return;
  auto& collector = otfair::obs::TraceCollector::Global();
  collector.Disable();
  const size_t spans = collector.Drain().size();
  if (Status status = collector.WriteChromeTrace(trace_path); !status.ok()) {
    std::fprintf(stderr, "warning: trace write failed: %s\n", status.ToString().c_str());
    return;
  }
  std::fprintf(stderr, "trace: %zu spans (%llu dropped) -> %s\n", spans,
               static_cast<unsigned long long>(collector.dropped_total()),
               trace_path.c_str());
}

// --- design ----------------------------------------------------------------

int RunDesign(const FlagParser& flags) {
  if (WantsHelp(flags, PrintDesignUsage)) return 0;
  const std::string research_path = flags.GetString("research", "");
  const std::string plan_path = flags.GetString("plan", "");
  if (research_path.empty() || plan_path.empty()) {
    PrintDesignUsage(stderr);
    return 2;
  }
  auto research = otfair::data::ReadCsv(research_path);
  if (!research.ok()) return Fail(research.status());

  // The OT backend is resolved by name through the registry and carried in
  // PipelineOptions, so any registered solver is reachable from here.
  otfair::core::PipelineOptions options;
  options.design.n_q = static_cast<size_t>(flags.GetInt("n_q", 50));
  options.design.target_t = flags.GetDouble("target_t", 0.5);
  if (flags.Has("lambdas")) {
    // Comma-separated barycentric weights, one per s level; validated
    // against the data's |S| inside the designer.
    for (const std::string& cell :
         otfair::common::Split(flags.GetString("lambdas", ""), ',')) {
      char* end = nullptr;
      const std::string trimmed = otfair::common::Trim(cell);
      const double value = std::strtod(trimmed.c_str(), &end);
      if (trimmed.empty() || end == trimmed.c_str() || *end != '\0')
        return Fail(Status::InvalidArgument("--lambdas must be a comma-separated list of "
                                            "numbers (got '" +
                                            trimmed + "')"));
      options.design.lambdas.push_back(value);
    }
  }
  auto threads = ResolveThreadsFlag(flags);
  if (!threads.ok()) return Fail(threads.status());
  options.design.threads = *threads;
  const std::string solver_name = flags.GetString("solver", "monotone");
  otfair::ot::SolverOptions solver_options;
  solver_options.sinkhorn.epsilon = flags.GetDouble("epsilon", 0.05);
  solver_options.sinkhorn.log_domain = true;
  auto solver = otfair::ot::MakeSolver(solver_name, solver_options);
  if (!solver.ok()) return Fail(solver.status());
  options.design.solver = std::move(*solver);

  const std::string trace_path = MaybeEnableTrace(flags);
  auto plans = otfair::core::DesignDistributionalRepair(*research, options.design);
  WriteTraceFile(trace_path);
  if (!plans.ok()) return Fail(plans.status());
  // Fail now, not at repair time: approximate backends can produce plans
  // whose marginals are too sloppy for the loader's 1e-5 check.
  if (Status status = plans->Validate(1e-5); !status.ok())
    return Fail(Status::FailedPrecondition(
        "designed plans fail validation (" + status.message() +
        "); with --solver=sinkhorn, try a larger --epsilon"));
  if (Status status = plans->SaveToFile(plan_path); !status.ok()) return Fail(status);
  std::printf(
      "designed %zu channels (|U|=%zu, |S|=%zu, n_Q=%zu, t=%.2f, solver=%s) from %zu "
      "research rows -> %s\n",
      plans->u_levels() * plans->dim(), plans->u_levels(), plans->s_levels(),
      options.design.n_q, options.design.target_t,
      options.design.solver->name().c_str(), research->size(), plan_path.c_str());
  return 0;
}

// --- repair ----------------------------------------------------------------

int RunRepair(const FlagParser& flags) {
  if (WantsHelp(flags, PrintRepairUsage)) return 0;
  const std::string plan_path = flags.GetString("plan", "");
  const std::string input_path = flags.GetString("input", "");
  const std::string output_path = flags.GetString("output", "");
  if (plan_path.empty() || input_path.empty() || output_path.empty()) {
    PrintRepairUsage(stderr);
    return 2;
  }
  auto plans = otfair::core::RepairPlanSet::LoadFromFile(plan_path);
  if (!plans.ok()) return Fail(plans.status());
  auto archive = otfair::data::ReadCsv(input_path);
  if (!archive.ok()) return Fail(archive.status());

  // Optional s-label estimation from a research CSV.
  std::vector<int> labels = archive->s_labels();
  if (flags.GetBool("estimate_labels", false)) {
    const std::string research_path = flags.GetString("research", "");
    if (research_path.empty()) {
      std::fprintf(stderr, "--estimate_labels requires --research\n");
      return 2;
    }
    auto research = otfair::data::ReadCsv(research_path);
    if (!research.ok()) return Fail(research.status());
    auto estimator = otfair::core::LabelEstimator::Fit(*research);
    if (!estimator.ok()) return Fail(estimator.status());
    auto estimated = estimator->EstimateS(*archive);
    if (!estimated.ok()) return Fail(estimated.status());
    labels = std::move(*estimated);
    std::printf("estimated archive s-labels from %s\n", research_path.c_str());
  }

  const std::string mode = flags.GetString("mode", "stochastic");
  const double strength = flags.GetDouble("strength", 1.0);
  auto threads = ResolveThreadsFlag(flags);
  if (!threads.ok()) return Fail(threads.status());
  otfair::common::Result<otfair::data::Dataset> repaired(
      Status::Internal("unreachable"));
  if (mode == "quantile") {
    if (*threads > 0)
      std::fprintf(stderr, "note: quantile repair is serial; --threads has no effect\n");
    auto repairer = otfair::core::QuantileMapRepairer::Create(std::move(*plans), strength);
    if (!repairer.ok()) return Fail(repairer.status());
    repaired = repairer->RepairDatasetWithLabels(*archive, labels);
  } else if (mode == "stochastic" || mode == "mean") {
    otfair::core::RepairOptions options;
    options.seed = flags.GetUint64("seed", 0x07fa12u);
    options.strength = strength;
    options.threads = *threads;
    options.mode = mode == "mean" ? otfair::core::TransportMode::kConditionalMean
                                  : otfair::core::TransportMode::kStochastic;
    auto repairer = otfair::core::OffSampleRepairer::Create(std::move(*plans), options);
    if (!repairer.ok()) return Fail(repairer.status());
    repaired = repairer->RepairDatasetWithLabels(*archive, labels);
  } else {
    std::fprintf(stderr, "unknown --mode=%s\n", mode.c_str());
    return 2;
  }
  if (!repaired.ok()) return Fail(repaired.status());
  if (Status status = otfair::data::WriteCsv(*repaired, output_path); !status.ok())
    return Fail(status);
  std::printf("repaired %zu rows (%s mode, strength %.2f) -> %s\n", repaired->size(),
              mode.c_str(), strength, output_path.c_str());
  return 0;
}

// --- serve -----------------------------------------------------------------

/// Builds the service + batcher options shared by both serve modes.
otfair::common::Result<otfair::serve::ServiceOptions> ServeServiceOptions(
    const FlagParser& flags) {
  otfair::serve::ServiceOptions options;
  options.seed = flags.GetUint64("seed", 0x07fa12u);
  options.strength = flags.GetDouble("strength", 1.0);
  const std::string mode = flags.GetString("mode", "stochastic");
  if (mode == "mean") {
    options.mode = otfair::core::TransportMode::kConditionalMean;
  } else if (mode == "stochastic") {
    options.mode = otfair::core::TransportMode::kStochastic;
  } else {
    return Status::InvalidArgument("serve supports --mode=stochastic|mean (got " + mode + ")");
  }
  auto threads = ResolveThreadsFlag(flags);
  if (!threads.ok()) return threads.status();
  options.threads = *threads;
  const int shards = flags.GetInt("drift_shards", 8);
  if (shards < 1) return Status::InvalidArgument("--drift_shards must be >= 1");
  options.drift_shards = static_cast<size_t>(shards);
  options.drift.w1_threshold = flags.GetDouble("w1_threshold", options.drift.w1_threshold);
  options.drift.out_of_range_threshold =
      flags.GetDouble("oor_threshold", options.drift.out_of_range_threshold);
  const int sketch_every = flags.GetInt("sketch_every", 16);
  if (sketch_every < 0) return Status::InvalidArgument("--sketch_every must be >= 0");
  options.sketch_sample_every = static_cast<uint64_t>(sketch_every);
  options.faults = flags.GetString("faults", "");
  return options;
}

/// Builds the self-heal knobs from flags (used when --self-heal is set).
otfair::serve::RedesignerOptions ServeRedesignerOptions(const FlagParser& flags) {
  otfair::serve::RedesignerOptions options;
  options.poll_interval_ms = flags.GetInt("heal_poll_ms", options.poll_interval_ms);
  options.cooldown_ms = flags.GetInt("heal_cooldown_ms", options.cooldown_ms);
  options.max_retries = flags.GetInt("heal_retries", options.max_retries);
  options.backoff_initial_ms = flags.GetInt("heal_backoff_ms", options.backoff_initial_ms);
  options.backoff_max_ms = flags.GetInt("heal_backoff_max_ms", options.backoff_max_ms);
  options.redesign_timeout_ms = flags.GetInt("heal_timeout_ms", options.redesign_timeout_ms);
  options.min_channel_count =
      flags.GetUint64("heal_min_channel", options.min_channel_count);
  options.fresh_sketch_wait_ms =
      flags.GetInt("heal_fresh_wait_ms", options.fresh_sketch_wait_ms);
  return options;
}

otfair::common::Result<otfair::serve::BatcherOptions> ServeBatcherOptions(
    const FlagParser& flags, bool background_flush) {
  otfair::serve::BatcherOptions options;
  const int max_batch = flags.GetInt("max_batch", 256);
  const int queue_depth = flags.GetInt("queue_depth", 4096);
  const int max_wait_us = flags.GetInt("max_wait_us", 1000);
  if (max_batch < 1 || queue_depth < 1 || max_wait_us < 0)
    return Status::InvalidArgument(
        "--max_batch/--queue_depth must be >= 1 and --max_wait_us >= 0");
  options.max_batch = static_cast<size_t>(max_batch);
  options.max_queue_depth = static_cast<size_t>(queue_depth);
  options.max_wait_us = max_wait_us;
  options.background_flush = background_flush;
  return options;
}

/// Self-driving load mode: N concurrent sessions replay an archive CSV
/// through the batcher, then metrics/health are printed as JSON lines.
/// This is how serving throughput is measured in CI without sockets.
int RunServeReplay(otfair::serve::RepairService& service,
                   const otfair::serve::BatcherOptions& batcher_options,
                   const otfair::data::Dataset& archive, size_t sessions,
                   otfair::serve::Redesigner* redesigner, int heal_drain_ms,
                   otfair::serve::Checkpointer* checkpointer) {
  std::atomic<uint64_t> submitted{0};
  std::atomic<uint64_t> responses{0};
  std::atomic<uint64_t> failures{0};
  otfair::serve::Batcher batcher(
      &service, batcher_options,
      [&](const otfair::serve::RowResponse& response) {
        responses.fetch_add(1, std::memory_order_relaxed);
        if (!response.status.ok()) failures.fetch_add(1, std::memory_order_relaxed);
      });

  const size_t dim = archive.dim();
  otfair::common::Timer timer;
  std::vector<std::thread> workers;
  workers.reserve(sessions);
  for (size_t session = 0; session < sessions; ++session) {
    workers.emplace_back([&, session] {
      for (size_t i = 0; i < archive.size(); ++i) {
        // Drain: stop submitting; rows already accepted still complete.
        if (g_drain_signal != 0) break;
        otfair::serve::RowRequest request;
        request.session_id = session;
        request.row_index = i;
        request.u = archive.u(i);
        request.s = archive.s(i);
        const double* row = archive.features().row(i);
        request.features.assign(row, row + dim);
        // Backpressure: on a full queue the submitter drains a batch
        // itself and retries — replay never drops a row.
        while (true) {
          Status status = batcher.Submit(std::move(request));
          if (status.ok()) break;
          batcher.Flush();
        }
        submitted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  batcher.Flush();
  batcher.Close();
  const double seconds = timer.ElapsedSeconds();
  const bool drained = g_drain_signal != 0;

  // With self-heal on, let the redesigner settle before judging health:
  // drift that tripped near the end of the replay may still be mid-episode
  // (redesign in flight or backing off). The wait is bounded — a stream
  // whose sketches never ripened stays drifted and exits 3 below. A drain
  // skips the wait: the operator asked for a prompt exit.
  if (redesigner != nullptr && !drained) {
    const auto drain_deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(heal_drain_ms);
    while (std::chrono::steady_clock::now() < drain_deadline) {
      const auto verdict = service.Health();
      if (!redesigner->busy() && (!verdict.drifted || verdict.degraded)) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }

  // A drain writes a final checkpoint so the next --recover resumes from
  // the last row served, not the last background tick.
  if (checkpointer != nullptr) {
    if (Status status = checkpointer->WriteNow(); !status.ok())
      std::fprintf(stderr, "warning: final checkpoint failed: %s\n",
                   status.ToString().c_str());
  }

  // Under a drain only the rows actually accepted are owed responses.
  const uint64_t expected =
      drained ? submitted.load() : static_cast<uint64_t>(sessions) * archive.size();
  const auto metrics = service.metrics().Snapshot(batcher.queue_depth());
  const auto health = service.Health();
  std::printf("%s\n%s\n", metrics.ToJson().c_str(), health.ToJson().c_str());
  std::fprintf(stderr,
               "replayed %llu rows over %zu sessions in %.2fs (%.0f rows/s)  "
               "p50=%.0fus p99=%.0fus  %s%s\n",
               static_cast<unsigned long long>(responses.load()), sessions, seconds,
               seconds > 0 ? static_cast<double>(responses.load()) / seconds : 0.0,
               metrics.latency_p50_us, metrics.latency_p99_us, health.state(),
               drained ? "  (drained on signal)" : "");
  if (responses.load() != expected || failures.load() > 0) {
    std::fprintf(stderr, "error: %llu/%llu responses, %llu failures\n",
                 static_cast<unsigned long long>(responses.load()),
                 static_cast<unsigned long long>(expected),
                 static_cast<unsigned long long>(failures.load()));
    return 1;
  }
  // A clean drain exits 0: every accepted row was answered and the final
  // checkpoint landed (or its failure was logged); the process was asked
  // to stop, so the drift verdict is advisory here.
  if (drained) return 0;
  // Degraded means self-heal gave up but every row was served on the old
  // snapshot — that is the graceful-degradation contract, exit 0 (the
  // health JSON above carries "state":"degraded" for operators). Exit 3 is
  // reserved for drift with no self-heal resolution.
  if (health.degraded) return 0;
  return health.drifted ? 3 : 0;
}

/// Interactive mode: the newline protocol on stdin/stdout. A SIGTERM/
/// SIGINT interrupts getline (the handlers install without SA_RESTART) and
/// drains: the loop exits, pending rows flush, and a final checkpoint is
/// written before the clean exit-0 return.
int RunServeStdio(otfair::serve::RepairService& service,
                  const otfair::serve::BatcherOptions& batcher_options,
                  otfair::serve::Checkpointer* checkpointer) {
  std::mutex out_mu;
  otfair::serve::Batcher batcher(
      &service, batcher_options, [&](const otfair::serve::RowResponse& response) {
        std::lock_guard<std::mutex> lock(out_mu);
        std::fputs(otfair::serve::FormatRowResponse(response).c_str(), stdout);
        std::fputc('\n', stdout);
        std::fflush(stdout);
      });
  auto respond = [&](const std::string& line) {
    std::lock_guard<std::mutex> lock(out_mu);
    std::fputs(line.c_str(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
  };

  char* line_buf = nullptr;
  size_t line_cap = 0;
  ssize_t line_len;
  while (g_drain_signal == 0 &&
         (line_len = ::getline(&line_buf, &line_cap, stdin)) >= 0) {
    std::string line(line_buf, static_cast<size_t>(line_len));
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) line.pop_back();
    if (line.empty()) continue;
    auto request = otfair::serve::ParseRequestLine(line, service.dim(), service.u_levels(),
                                                   service.s_levels());
    if (!request.ok()) {
      respond(otfair::serve::FormatErrorLine(request.status()));
      continue;
    }
    using otfair::serve::RequestKind;
    if (request->kind == RequestKind::kQuit) break;
    switch (request->kind) {
      case RequestKind::kRepair: {
        const uint64_t session = request->row.session_id;
        const uint64_t row = request->row.row_index;
        if (Status status = batcher.Submit(std::move(request->row)); !status.ok())
          respond(otfair::serve::FormatErrorLine(session, row, status));
        break;
      }
      case RequestKind::kMetrics:
        respond(service.metrics().Snapshot(batcher.queue_depth()).ToJson());
        break;
      case RequestKind::kMetricsProm: {
        // The one multi-line response: the exposition text (every line
        // newline-terminated by the renderer) plus a "# EOF" marker so a
        // line-oriented client knows where the payload ends. respond()
        // appends the marker's own newline.
        std::string text = service.metrics().RenderPrometheus(batcher.queue_depth());
        text += "# EOF";
        respond(text);
        break;
      }
      case RequestKind::kHealth:
        respond(service.Health().ToJson());
        break;
      case RequestKind::kReload: {
        if (Status status = service.ReloadPlanFromFile(request->plan_path); !status.ok()) {
          respond(otfair::serve::FormatErrorLine(status));
        } else {
          respond("ok reload " + std::to_string(service.plan_version()));
        }
        break;
      }
      case RequestKind::kCheckpoint: {
        if (checkpointer == nullptr) {
          respond(otfair::serve::FormatErrorLine(Status::FailedPrecondition(
              "checkpointing disabled (serve with --checkpoint_dir)")));
          break;
        }
        // Drain in-flight micro-batches first so the acked checkpoint
        // covers every row accepted before the verb — without the flush
        // a partial batch could still be queued and its drift/sketch
        // updates would miss the snapshot.
        batcher.Flush();
        if (Status status = checkpointer->WriteNow(); !status.ok()) {
          respond(otfair::serve::FormatErrorLine(status));
        } else {
          respond("ok checkpoint " + std::to_string(checkpointer->generation()));
        }
        break;
      }
      case RequestKind::kQuit:
        break;
    }
  }
  std::free(line_buf);
  // Drain (signal or quit/EOF): stop accepting, finish what was accepted,
  // then persist the post-flush state so --recover resumes exactly here.
  batcher.Close();
  if (checkpointer != nullptr) {
    if (Status status = checkpointer->WriteNow(); !status.ok())
      std::fprintf(stderr, "warning: final checkpoint failed: %s\n",
                   status.ToString().c_str());
  }
  if (g_drain_signal != 0)
    std::fprintf(stderr, "drained on signal %d (final checkpoint generation %llu)\n",
                 static_cast<int>(g_drain_signal),
                 checkpointer != nullptr
                     ? static_cast<unsigned long long>(checkpointer->generation())
                     : 0ULL);
  return 0;
}

/// Network mode: the same protocol and drain semantics as stdio, served
/// over TCP by `net::Server`. The main thread just parks until a drain
/// signal; the workers own all socket I/O.
int RunServeNet(otfair::serve::RepairService& service, const FlagParser& flags,
                const otfair::serve::BatcherOptions& batcher_options,
                otfair::serve::Checkpointer* checkpointer) {
  otfair::net::ServerOptions options;
  const int listen_port = flags.GetInt("listen", 0);
  if (listen_port < 0 || listen_port > 65535)
    return Fail(Status::InvalidArgument("--listen must be a port in [0, 65535]"));
  options.port = static_cast<uint16_t>(listen_port);
  options.host = flags.GetString("listen-host", flags.GetString("listen_host", "127.0.0.1"));
  const int net_threads = flags.GetInt("net-threads", flags.GetInt("net_threads", 1));
  if (net_threads < 1) return Fail(Status::InvalidArgument("--net-threads must be >= 1"));
  options.net_threads = net_threads;
  const int max_conns = flags.GetInt("max-conns", flags.GetInt("max_conns", 4096));
  if (max_conns < 1) return Fail(Status::InvalidArgument("--max-conns must be >= 1"));
  options.max_connections = static_cast<size_t>(max_conns);
  options.batcher = batcher_options;
  otfair::net::ServerHooks hooks;
  if (checkpointer != nullptr) {
    hooks.checkpoint = [checkpointer]() -> otfair::common::Result<uint64_t> {
      if (Status status = checkpointer->WriteNow(); !status.ok()) return status;
      return checkpointer->generation();
    };
  }
  auto server = otfair::net::Server::Create(&service, options, std::move(hooks));
  if (!server.ok()) return Fail(server.status());
  const std::string port_file =
      flags.GetString("port-file", flags.GetString("port_file", ""));
  if (!port_file.empty()) {
    if (Status status = otfair::common::AtomicWriteFile(
            port_file, std::to_string((*server)->port()) + "\n");
        !status.ok())
      return Fail(status);
  }
  std::fprintf(stderr, "listening on %s:%u (%d net threads, %zu max connections)\n",
               options.host.c_str(), (*server)->port(), options.net_threads,
               options.max_connections);
  while (g_drain_signal == 0) std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // Graceful network drain: stop accepting, flush in-flight connections,
  // write the final checkpoint, exit 0 — the PR-8 drain contract extended
  // to sockets.
  (*server)->Shutdown();
  if (checkpointer != nullptr) {
    if (Status status = checkpointer->WriteNow(); !status.ok())
      std::fprintf(stderr, "warning: final checkpoint failed: %s\n",
                   status.ToString().c_str());
  }
  std::fprintf(stderr, "drained on signal %d (final checkpoint generation %llu)\n",
               static_cast<int>(g_drain_signal),
               checkpointer != nullptr
                   ? static_cast<unsigned long long>(checkpointer->generation())
                   : 0ULL);
  return 0;
}

/// Builds the service from the newest intact checkpoint. The checkpoint's
/// repair semantics (seed/mode/strength/sketch cadence) override any flags
/// — they bind the bit-identity contract pre-crash sessions were served
/// under — with a stderr warning when a flag would have disagreed. Returns
/// kNotFound (checkpoint directory empty/corrupt-through) for the caller
/// to cold-start; recovery never refuses to serve.
otfair::common::Result<std::unique_ptr<otfair::serve::RepairService>> RecoverService(
    const FlagParser& flags, const std::string& checkpoint_dir,
    const otfair::serve::ServiceOptions& flag_options, uint64_t* recovered_generation) {
  auto recovered = otfair::serve::RecoverNewestCheckpoint(checkpoint_dir);
  if (!recovered.ok()) return recovered.status();
  for (const std::string& note : recovered->skipped)
    std::fprintf(stderr, "warning: skipped corrupt checkpoint: %s\n", note.c_str());
  otfair::serve::CheckpointData& data = recovered->data;

  otfair::serve::ServiceOptions options = flag_options;
  auto warn_override = [&](const char* flag, bool differs) {
    if (flags.Has(flag) && differs)
      std::fprintf(stderr,
                   "warning: --%s overridden by the recovered checkpoint (repair "
                   "semantics are fixed by the pre-crash service)\n",
                   flag);
  };
  warn_override("seed", options.seed != data.seed);
  warn_override("mode", static_cast<uint32_t>(options.mode) != data.mode);
  warn_override("strength", options.strength != data.strength);
  warn_override("sketch_every", options.sketch_sample_every != data.sketch_sample_every);
  options.seed = data.seed;
  options.mode = static_cast<otfair::core::TransportMode>(data.mode);
  options.strength = data.strength;
  options.sketch_sample_every = data.sketch_sample_every;
  options.initial_plan_version = data.plan_version;

  auto service = otfair::serve::RepairService::Create(std::move(data.plans), options);
  if (!service.ok()) return service.status();
  // Observed state is best-effort: a restore failure costs drift history,
  // not availability (fresh accumulators are the cold-start behaviour).
  if (Status status = (*service)->RestoreObservedState(data.drift_counts, data.sketches);
      !status.ok())
    std::fprintf(stderr,
                 "warning: checkpoint observed-state restore failed (%s); "
                 "continuing with fresh drift state\n",
                 status.ToString().c_str());
  (*service)->SetDegraded(data.degraded);
  (*service)->MarkRecovered(data.generation);
  *recovered_generation = data.generation;
  std::fprintf(stderr,
               "recovered checkpoint generation %llu from %s (plan version %llu%s%s)\n",
               static_cast<unsigned long long>(data.generation), recovered->path.c_str(),
               static_cast<unsigned long long>(data.plan_version),
               data.degraded ? ", degraded" : "",
               data.episode_open ? ", drift episode was open" : "");
  return service;
}

int RunServe(const FlagParser& flags) {
  if (WantsHelp(flags, PrintServeUsage)) return 0;
  // One mode per process: --replay drives itself, --listen serves clients.
  if (flags.Has("listen") && flags.Has("replay")) {
    std::fprintf(stderr, "error: --listen and --replay are mutually exclusive\n\n");
    PrintServeUsage(stderr);
    return 2;
  }
  const std::string plan_path = flags.GetString("plan", "");
  const std::string checkpoint_dir = flags.GetString("checkpoint_dir", "");
  const bool recover = flags.GetBool("recover", false);
  if (recover && checkpoint_dir.empty())
    return Fail(Status::InvalidArgument("--recover requires --checkpoint_dir"));
  const std::string prom_dump =
      flags.GetString("prom-dump", flags.GetString("prom_dump", ""));
  const int prom_interval_ms =
      flags.GetInt("prom-interval-ms", flags.GetInt("prom_interval_ms", 1000));
  if (!prom_dump.empty() && prom_interval_ms < 1)
    return Fail(Status::InvalidArgument("--prom-interval-ms must be >= 1"));
  // Tracing turns on before the service exists so recovery and plan-load
  // spans land in the file too.
  const std::string trace_path = MaybeEnableTrace(flags);
  // --plan is optional under --recover (the checkpoint embeds the plan),
  // but without either there is nothing to serve.
  if (plan_path.empty() && !recover) {
    PrintServeUsage(stderr);
    return 2;
  }
  auto service_options = ServeServiceOptions(flags);
  if (!service_options.ok()) return Fail(service_options.status());

  std::unique_ptr<otfair::serve::RepairService> service;
  uint64_t recovered_generation = 0;
  if (recover) {
    auto recovered =
        RecoverService(flags, checkpoint_dir, *service_options, &recovered_generation);
    if (recovered.ok()) {
      service = std::move(*recovered);
    } else if (recovered.status().code() == otfair::common::StatusCode::kNotFound) {
      if (plan_path.empty())
        return Fail(Status::NotFound(
            "no intact checkpoint in " + checkpoint_dir +
            " and no --plan to cold-start from (" + recovered.status().message() + ")"));
      std::fprintf(stderr, "warning: %s; cold-starting from %s\n",
                   recovered.status().message().c_str(), plan_path.c_str());
    } else {
      return Fail(recovered.status());
    }
  }
  if (!service) {
    auto plans = otfair::core::RepairPlanSet::LoadFromFile(plan_path);
    if (!plans.ok()) return Fail(plans.status());
    auto created = otfair::serve::RepairService::Create(std::move(*plans), *service_options);
    if (!created.ok()) return Fail(created.status());
    service = std::move(*created);
  }

  // The self-heal loop runs identically under both modes; it only talks to
  // the service. Held here so it outlives whichever mode runs and stops
  // (thread join) before the service dies. After a crash mid-episode the
  // restored drift accumulators still trip the monitor, so the loop
  // re-opens the episode on its own — no episode state needs replaying.
  std::unique_ptr<otfair::serve::Redesigner> redesigner;
  if (flags.GetBool("self-heal", false) || flags.GetBool("self_heal", false)) {
    auto created =
        otfair::serve::Redesigner::Create(service.get(), ServeRedesignerOptions(flags));
    if (!created.ok()) return Fail(created.status());
    redesigner = std::move(*created);
  }

  // The checkpoint loop starts after recovery so its write counter seeds
  // past every pre-crash generation (new files sort strictly newer).
  std::unique_ptr<otfair::serve::Checkpointer> checkpointer;
  if (!checkpoint_dir.empty()) {
    otfair::serve::CheckpointerOptions checkpoint_options;
    checkpoint_options.dir = checkpoint_dir;
    checkpoint_options.interval_ms =
        flags.GetInt("checkpoint_interval_ms", checkpoint_options.interval_ms);
    checkpoint_options.keep = flags.GetInt("checkpoint_keep", checkpoint_options.keep);
    auto created = otfair::serve::Checkpointer::Create(
        service.get(), checkpoint_options, redesigner.get(), recovered_generation);
    if (!created.ok()) return Fail(created.status());
    checkpointer = std::move(*created);
  }

  // Periodic Prometheus dump: a helper thread renders the full registry
  // (facade counters plus the service/checkpointer/redesigner gauges) and
  // atomically replaces the file, so a scraper reading F never sees a torn
  // exposition. The 50 ms stop-poll keeps shutdown prompt regardless of
  // the dump interval; a final dump lands after the loops stop.
  std::atomic<bool> prom_stop{false};
  std::thread prom_thread;
  if (!prom_dump.empty()) {
    otfair::serve::RepairService* service_ptr = service.get();
    prom_thread = std::thread([service_ptr, &prom_stop, prom_dump, prom_interval_ms] {
      auto next =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(prom_interval_ms);
      while (!prom_stop.load(std::memory_order_relaxed)) {
        if (std::chrono::steady_clock::now() >= next) {
          if (Status status = otfair::common::AtomicWriteFile(
                  prom_dump, service_ptr->metrics().RenderPrometheus());
              !status.ok())
            std::fprintf(stderr, "warning: prom dump failed: %s\n",
                         status.ToString().c_str());
          next = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(prom_interval_ms);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
    });
  }

  InstallDrainHandlers();

  const std::string replay_path = flags.GetString("replay", "");
  int ret = 0;
  if (!replay_path.empty()) {
    auto archive = otfair::data::ReadCsv(replay_path);
    if (!archive.ok()) return Fail(archive.status());
    if (archive->dim() != service->dim())
      return Fail(Status::InvalidArgument("replay archive/plan dimensionality mismatch"));
    const int sessions = flags.GetInt("sessions", 1);
    if (sessions < 1) return Fail(Status::InvalidArgument("--sessions must be >= 1"));
    // Replay drives traffic flat-out and flushes explicitly; a flusher
    // thread would only add wakeups.
    auto batcher_options = ServeBatcherOptions(flags, /*background_flush=*/false);
    if (!batcher_options.ok()) return Fail(batcher_options.status());
    ret = RunServeReplay(*service, *batcher_options, *archive,
                         static_cast<size_t>(sessions), redesigner.get(),
                         flags.GetInt("heal_drain_ms", 20000), checkpointer.get());
  } else if (flags.Has("listen")) {
    // Each net worker is its batcher's only submitter and flushes at the
    // end of every epoll cycle; a flusher thread would race the workers'
    // unlocked connection state for nothing.
    auto batcher_options = ServeBatcherOptions(flags, /*background_flush=*/false);
    if (!batcher_options.ok()) return Fail(batcher_options.status());
    ret = RunServeNet(*service, flags, *batcher_options, checkpointer.get());
  } else {
    auto batcher_options = ServeBatcherOptions(flags, /*background_flush=*/true);
    if (!batcher_options.ok()) return Fail(batcher_options.status());
    ret = RunServeStdio(*service, *batcher_options, checkpointer.get());
  }
  // Stop order mirrors dependency order: the checkpoint loop reads the
  // service and redesigner, so it stops first (the modes already wrote
  // their final checkpoint synchronously).
  if (checkpointer) checkpointer->Stop();
  if (redesigner) redesigner->Stop();
  if (prom_thread.joinable()) {
    prom_stop.store(true, std::memory_order_relaxed);
    prom_thread.join();
    // Final dump after the loops stop: the file reflects the end state
    // (final checkpoint generation, settled redesign counters).
    if (Status status = otfair::common::AtomicWriteFile(
            prom_dump, service->metrics().RenderPrometheus());
        !status.ok())
      std::fprintf(stderr, "warning: final prom dump failed: %s\n",
                   status.ToString().c_str());
  }
  WriteTraceFile(trace_path);
  return ret;
}

// --- loadgen ---------------------------------------------------------------

int RunLoadgenCmd(const FlagParser& flags) {
  if (WantsHelp(flags, PrintLoadgenUsage)) return 0;
  if (!flags.Has("port")) {
    PrintLoadgenUsage(stderr);
    return 2;
  }
  const int port = flags.GetInt("port", 0);
  if (port < 1 || port > 65535)
    return Fail(Status::InvalidArgument("--port must be in [1, 65535]"));
  const std::string host = flags.GetString("host", "127.0.0.1");

  // Control mode: one verb, print the response, done.
  const std::string verb = flags.GetString("verb", "");
  if (!verb.empty()) {
    auto response = otfair::net::SendVerb(host, static_cast<uint16_t>(port), verb,
                                          flags.GetInt("timeout_ms", 30000));
    if (!response.ok()) return Fail(response.status());
    std::fputs(response->c_str(), stdout);
    return 0;
  }

  otfair::net::LoadgenOptions options;
  options.host = host;
  options.port = static_cast<uint16_t>(port);
  const int connections = flags.GetInt("connections", 1);
  const int sessions = flags.GetInt("sessions", 0);
  const int dim = flags.GetInt("dim", 2);
  const int window = flags.GetInt("window", 64);
  if (connections < 1 || sessions < 0 || dim < 1 || window < 1)
    return Fail(Status::InvalidArgument(
        "--connections/--dim/--window must be >= 1 and --sessions >= 0"));
  options.connections = static_cast<size_t>(connections);
  options.sessions = static_cast<size_t>(sessions);
  options.rows_per_session = flags.GetUint64("rows", 1000);
  options.dim = static_cast<size_t>(dim);
  options.u_levels = flags.GetInt("u-levels", flags.GetInt("u_levels", 2));
  options.s_levels = flags.GetInt("s-levels", flags.GetInt("s_levels", 2));
  options.window = static_cast<size_t>(window);
  options.seed = flags.GetUint64("seed", 1);
  options.timeout_ms = flags.GetInt("timeout_ms", 30000);

  auto result = otfair::net::RunLoadgen(options);
  if (!result.ok()) return Fail(result.status());

  const std::string json_path = flags.GetString("json", "");
  if (!json_path.empty()) {
    if (Status status = otfair::common::AtomicWriteFile(json_path, result->ToJson() + "\n");
        !status.ok())
      return Fail(status);
  }
  const std::string csv_path = flags.GetString("csv", "");
  if (!csv_path.empty()) {
    const bool fresh = ::access(csv_path.c_str(), F_OK) != 0;
    std::FILE* f = std::fopen(csv_path.c_str(), "a");
    if (f == nullptr) return Fail(Status::IoError("cannot open " + csv_path));
    if (fresh) std::fprintf(f, "%s\n", otfair::net::LoadgenResult::CsvHeader().c_str());
    std::fprintf(f, "%s\n", result->CsvRow().c_str());
    std::fclose(f);
  }
  std::printf(
      "loadgen: %llu/%llu rows ok over %zu connections (%zu sessions) in %.2fs  "
      "%.0f rows/s  p50=%.0fus p90=%.0fus p99=%.0fus max=%.0fus\n",
      static_cast<unsigned long long>(result->rows_ok),
      static_cast<unsigned long long>(result->rows_sent), options.connections,
      options.sessions == 0 ? options.connections : options.sessions, result->seconds,
      result->rows_per_sec, result->p50_us, result->p90_us, result->p99_us,
      result->max_us);
  if (!result->clean()) {
    std::fprintf(stderr, "error: %llu error rows (first: %s)\n",
                 static_cast<unsigned long long>(result->rows_err),
                 result->first_error.c_str());
    return 1;
  }
  return 0;
}

// --- inspect ---------------------------------------------------------------

int RunInspect(const FlagParser& flags) {
  if (WantsHelp(flags, PrintInspectUsage)) return 0;
  const std::string plan_path = flags.GetString("plan", "");
  const std::string data_path = flags.GetString("data", "");
  const std::string checkpoint_path = flags.GetString("checkpoint", "");
  const bool json = flags.GetBool("json", false);
  // Observability introspection: whether --trace span collection is
  // compiled into this binary, and every metric name the serve registry
  // exports. A scratch Metrics instance supplies the facade's name set
  // (component gauges register per live service, so they are not listed
  // here).
  auto write_obs_keys = [](JsonWriter& w) {
    otfair::serve::Metrics scratch;
    // Networked serving is compiled in unconditionally; "net_listen"
    // reports the defaults `serve --listen` starts from.
    const otfair::net::ServerOptions net_defaults;
    w.Key("trace_available").Bool(true)
        .Key("net_available").Bool(true)
        .Key("net_listen").BeginObject()
        .Key("host").String(net_defaults.host)
        .Key("net_threads").Int(net_defaults.net_threads)
        .Key("max_connections").Uint(net_defaults.max_connections)
        .Key("backlog").Int(net_defaults.backlog)
        .Key("line_cap_bytes").Uint(otfair::serve::kMaxRequestLineBytes)
        .EndObject();
    w.Key("metric_names").BeginArray();
    for (const std::string& name : scratch.registry().Names()) w.String(name);
    w.EndArray();
  };
  if (!checkpoint_path.empty()) {
    auto data = otfair::serve::LoadCheckpointFile(checkpoint_path);
    if (!data.ok()) return Fail(data.status());
    uint64_t sketch_rows = 0;
    for (const auto& sketch : data->sketches) sketch_rows += sketch.count();
    const char* mode = data->mode == 1 ? "mean" : "stochastic";
    if (json) {
      JsonWriter w;
      w.BeginObject()
          .Key("kind").String("checkpoint")
          .Key("path").String(checkpoint_path)
          .Key("generation").Uint(data->generation)
          .Key("plan_version").Uint(data->plan_version)
          .Key("degraded").Bool(data->degraded)
          .Key("episode_open").Bool(data->episode_open)
          .Key("seed").Uint(data->seed)
          .Key("mode").String(mode)
          .Key("strength").Double(data->strength)
          .Key("sketch_sample_every").Uint(data->sketch_sample_every)
          .Key("sketches").Uint(data->sketches.size())
          .Key("sketch_rows").Uint(sketch_rows)
          .Key("drift_counts_bytes").Uint(data->drift_counts.size())
          .Key("dim").Uint(data->plans.dim())
          .Key("s_levels").Uint(data->plans.s_levels())
          .Key("u_levels").Uint(data->plans.u_levels())
          .EndObject();
      std::printf("%s\n", w.str().c_str());
      return 0;
    }
    std::printf(
        "checkpoint %s\n"
        "  generation %llu, plan version %llu%s%s\n"
        "  repair semantics: seed=%llu mode=%s strength=%.3f sketch_every=%llu\n"
        "  plan: dim=%zu |S|=%zu |U|=%zu\n"
        "  observed state: %zu sketches (%llu sampled values), %zu drift-count bytes\n",
        checkpoint_path.c_str(), static_cast<unsigned long long>(data->generation),
        static_cast<unsigned long long>(data->plan_version),
        data->degraded ? ", degraded" : "", data->episode_open ? ", episode open" : "",
        static_cast<unsigned long long>(data->seed), mode, data->strength,
        static_cast<unsigned long long>(data->sketch_sample_every), data->plans.dim(),
        data->plans.s_levels(), data->plans.u_levels(), data->sketches.size(),
        static_cast<unsigned long long>(sketch_rows), data->drift_counts.size());
    return 0;
  }
  if (!plan_path.empty()) {
    auto plans = otfair::core::RepairPlanSet::LoadFromFile(plan_path);
    if (!plans.ok()) return Fail(plans.status());
    const size_t s_levels = plans->s_levels();
    const size_t u_levels = plans->u_levels();
    // Per-channel nnz/bytes sum over all |S| plans of the channel.
    auto channel_nnz = [&](const otfair::core::ChannelPlan& channel) {
      size_t nnz = 0;
      for (size_t s = 0; s < s_levels; ++s) nnz += channel.plan[s].nnz();
      return nnz;
    };
    auto channel_bytes = [&](const otfair::core::ChannelPlan& channel) {
      size_t bytes = 0;
      for (size_t s = 0; s < s_levels; ++s) bytes += channel.plan[s].MemoryBytes();
      return bytes;
    };
    if (json) {
      JsonWriter w;
      w.BeginObject()
          .Key("kind").String("plan")
          .Key("path").String(plan_path)
          .Key("simd_isa").String(otfair::common::simd::ActiveIsa());
      write_obs_keys(w);
      w.Key("dim").Uint(plans->dim())
          .Key("target_t").Double(plans->target_t())
          .Key("s_levels").Uint(s_levels)
          .Key("u_levels").Uint(u_levels)
          .Key("lambdas").BeginArray();
      for (const double l : plans->lambdas()) w.Double(l);
      w.EndArray().Key("features").BeginArray();
      for (const std::string& name : plans->feature_names()) w.String(name);
      w.EndArray().Key("channels").BeginArray();
      for (size_t u = 0; u < u_levels; ++u) {
        for (size_t k = 0; k < plans->dim(); ++k) {
          const auto& channel = plans->At(static_cast<int>(u), k);
          const size_t nq = channel.grid.size();
          w.BeginObject()
              .Key("u").Int(static_cast<int>(u))
              .Key("k").Uint(k)
              .Key("feature").String(plans->feature_names()[k])
              .Key("n_q").Uint(nq)
              .Key("lo").Double(channel.grid.lo())
              .Key("hi").Double(channel.grid.hi())
              .Key("nnz").Uint(channel_nnz(channel))
              .Key("csr_bytes").Uint(channel_bytes(channel))
              .Key("dense_bytes").Uint(s_levels * nq * nq * sizeof(double))
              .EndObject();
        }
      }
      w.EndArray().EndObject();
      std::printf("%s\n", w.str().c_str());
      return 0;
    }
    std::printf("plan artifact %s\n  features (%zu):", plan_path.c_str(), plans->dim());
    for (const std::string& name : plans->feature_names()) std::printf(" %s", name.c_str());
    std::printf("\n  groups: |U|=%zu x |S|=%zu", u_levels, s_levels);
    std::printf("\n  barycentre position t = %.3f, lambdas =", plans->target_t());
    for (const double l : plans->lambdas()) std::printf(" %.3f", l);
    std::printf("\n");
    for (size_t u = 0; u < u_levels; ++u) {
      for (size_t k = 0; k < plans->dim(); ++k) {
        const auto& channel = plans->At(static_cast<int>(u), k);
        const size_t nq = channel.grid.size();
        const size_t nnz = channel_nnz(channel);
        const size_t bytes = channel_bytes(channel);
        std::printf(
            "  channel (u=%zu, %s): n_Q=%zu, range [%.4g, %.4g], "
            "plans nnz=%zu (%.1f KiB CSR vs %.1f KiB dense)\n",
            u, plans->feature_names()[k].c_str(), nq, channel.grid.lo(), channel.grid.hi(),
            nnz, static_cast<double>(bytes) / 1024.0,
            static_cast<double>(s_levels * nq * nq * sizeof(double)) / 1024.0);
      }
    }
    return 0;
  }
  if (!data_path.empty()) {
    auto dataset = otfair::data::ReadCsv(data_path);
    if (!dataset.ok()) return Fail(dataset.status());
    auto report = otfair::fairness::MakeFairnessReport(*dataset);
    if (!report.ok()) return Fail(report.status());
    if (json) {
      JsonWriter w;
      w.BeginObject()
          .Key("kind").String("data")
          .Key("path").String(data_path)
          .Key("simd_isa").String(otfair::common::simd::ActiveIsa());
      write_obs_keys(w);
      w.Key("rows").Uint(report->rows)
          .Key("s_levels").Uint(report->s_levels)
          .Key("u_levels").Uint(report->u_levels)
          .Key("features").BeginArray();
      for (const std::string& name : report->feature_names) w.String(name);
      w.EndArray().Key("e_per_feature").BeginArray();
      for (const double e : report->e_per_feature) w.Double(e);
      w.EndArray()
          .Key("e_aggregate").Double(report->e_aggregate)
          .Key("pr_u1").Double(report->pr_u1)
          .Key("pr_s1_given_u0").Double(report->pr_s1_given_u0)
          .Key("pr_s1_given_u1").Double(report->pr_s1_given_u1)
          .EndObject();
      std::printf("%s\n", w.str().c_str());
      return 0;
    }
    std::printf("%s\n%s", data_path.c_str(), report->ToString().c_str());
    return 0;
  }
  PrintInspectUsage(stderr);
  return 2;
}

// --- drift -----------------------------------------------------------------

int RunDrift(const FlagParser& flags) {
  if (WantsHelp(flags, PrintDriftUsage)) return 0;
  const std::string plan_path = flags.GetString("plan", "");
  const std::string input_path = flags.GetString("input", "");
  if (plan_path.empty() || input_path.empty()) {
    PrintDriftUsage(stderr);
    return 2;
  }
  auto plans = otfair::core::RepairPlanSet::LoadFromFile(plan_path);
  if (!plans.ok()) return Fail(plans.status());
  auto archive = otfair::data::ReadCsv(input_path);
  if (!archive.ok()) return Fail(archive.status());
  if (archive->dim() != plans->dim())
    return Fail(Status::InvalidArgument("archive/plan dimensionality mismatch"));
  // Archives carry arbitrary categorical labels; reject actual label
  // values outside the plan's level grid here rather than letting
  // Observe() CHECK-fail (declared-but-unobserved archive levels are
  // fine — only values matter).
  for (size_t i = 0; i < archive->size(); ++i) {
    if (static_cast<size_t>(archive->s(i)) >= plans->s_levels() ||
        static_cast<size_t>(archive->u(i)) >= plans->u_levels())
      return Fail(Status::InvalidArgument(
          "archive row " + std::to_string(i) + " has (u=" + std::to_string(archive->u(i)) +
          ", s=" + std::to_string(archive->s(i)) + ") but the plan was designed for |U|=" +
          std::to_string(plans->u_levels()) + ", |S|=" + std::to_string(plans->s_levels())));
  }
  auto monitor = otfair::core::DriftMonitor::Create(*plans);
  if (!monitor.ok()) return Fail(monitor.status());
  for (size_t i = 0; i < archive->size(); ++i) {
    for (size_t k = 0; k < archive->dim(); ++k)
      monitor->Observe(archive->u(i), archive->s(i), k, archive->feature(i, k));
  }
  const otfair::core::DriftReport report = monitor->Report();
  if (flags.GetBool("json", false)) {
    JsonWriter w;
    w.BeginObject()
        .Key("drifted").Bool(report.drifted)
        .Key("worst_w1").Double(report.worst_w1)
        .Key("worst_out_of_range").Double(report.worst_out_of_range)
        .Key("channels").BeginArray();
    for (const auto& c : report.channels) {
      w.BeginObject()
          .Key("u").Int(c.u)
          .Key("s").Int(c.s)
          .Key("k").Uint(c.k)
          .Key("count").Uint(c.count)
          .Key("w1").Double(c.w1_normalized)
          .Key("out_of_range_rate").Double(c.out_of_range_rate)
          .EndObject();
    }
    w.EndArray().EndObject();
    std::printf("%s\n", w.str().c_str());
  } else {
    std::printf("%s", report.ToString().c_str());
  }
  return report.drifted ? 3 : 0;  // non-zero exit signals drift to scripts
}

// --- simulate --------------------------------------------------------------

int RunSimulate(const FlagParser& flags) {
  if (WantsHelp(flags, PrintSimulateUsage)) return 0;
  const std::string out_path = flags.GetString("out", "");
  const int rows = flags.GetInt("rows", 0);
  if (out_path.empty() || rows < 1) {
    PrintSimulateUsage(stderr);
    return 2;
  }
  const int dim = flags.GetInt("dim", 2);
  if (dim < 1) return Fail(Status::InvalidArgument("--dim must be >= 1"));
  const double shift = flags.GetDouble("shift", 0.0);
  // Both spellings accepted: the hyphenated form is documented, the
  // underscore form matches every other flag's convention.
  const int s_levels = flags.GetInt("s-levels", flags.GetInt("s_levels", 2));
  const int u_levels = flags.GetInt("u-levels", flags.GetInt("u_levels", 2));
  if (s_levels < 2 || u_levels < 1)
    return Fail(Status::InvalidArgument("--s-levels must be >= 2 and --u-levels >= 1"));
  const double shift_at = flags.GetDouble("shift-at", flags.GetDouble("shift_at", 0.0));
  if (shift_at < 0.0 || shift_at >= 1.0)
    return Fail(Status::InvalidArgument("--shift-at must lie in [0, 1)"));
  otfair::common::Rng rng(flags.GetUint64("seed", 1));

  // Simulates `n` rows with the component means offset by `mean_shift`,
  // continuing `rng` — so a --shift-at run's prefix segment consumes the
  // stream exactly like a plain run and stays bit-identical to it.
  auto simulate_segment =
      [&](size_t n,
          double mean_shift) -> otfair::common::Result<otfair::data::Dataset> {
    if (s_levels == 2 && u_levels == 2) {
      // The paper's binary configuration — kept on the original code path
      // so seeded fixtures stay bit-identical across releases.
      otfair::sim::GaussianSimConfig config = otfair::sim::GaussianSimConfig::PaperDefault();
      if (static_cast<size_t>(dim) != config.dim) {
        // The paper's +/-1 mean separation replicated across `dim` channels.
        config.dim = static_cast<size_t>(dim);
        config.mean[0][0].assign(config.dim, -1.0);
        config.mean[0][1].assign(config.dim, 0.0);
        config.mean[1][0].assign(config.dim, 1.0);
        config.mean[1][1].assign(config.dim, 0.0);
      }
      for (int u = 0; u <= 1; ++u)
        for (int s = 0; s <= 1; ++s)
          for (double& m : config.mean[u][s]) m += mean_shift;
      return otfair::sim::SimulateGaussianMixture(n, config, rng);
    }
    otfair::sim::MultiGroupSimConfig config = otfair::sim::MultiGroupSimConfig::Default(
        static_cast<size_t>(s_levels), static_cast<size_t>(u_levels),
        static_cast<size_t>(dim));
    for (auto& stratum : config.mean)
      for (auto& component : stratum)
        for (double& m : component) m += mean_shift;
    return otfair::sim::SimulateMultiGroupGaussian(n, config, rng);
  };

  otfair::common::Result<otfair::data::Dataset> dataset(Status::Internal("unreachable"));
  if (shift_at == 0.0) {
    dataset = simulate_segment(static_cast<size_t>(rows), shift);
  } else {
    // Mid-stream shift: an unshifted prefix and a shifted suffix drawn
    // from one continuing RNG stream, concatenated in row order.
    const size_t cut = static_cast<size_t>(shift_at * static_cast<double>(rows));
    if (cut < 1 || cut >= static_cast<size_t>(rows))
      return Fail(Status::InvalidArgument(
          "--shift-at leaves an empty segment; pick F with 1 <= floor(F*N) < N"));
    auto before = simulate_segment(cut, 0.0);
    if (!before.ok()) return Fail(before.status());
    auto after = simulate_segment(static_cast<size_t>(rows) - cut, shift);
    if (!after.ok()) return Fail(after.status());
    const size_t n = before->size() + after->size();
    otfair::common::Matrix features(n, static_cast<size_t>(dim));
    std::vector<int> s_labels(n);
    std::vector<int> u_labels(n);
    std::vector<int> outcomes;
    if (before->has_outcome() && after->has_outcome()) outcomes.resize(n);
    for (size_t i = 0; i < n; ++i) {
      const otfair::data::Dataset& part = i < before->size() ? *before : *after;
      const size_t j = i < before->size() ? i : i - before->size();
      for (size_t k = 0; k < static_cast<size_t>(dim); ++k)
        features(i, k) = part.feature(j, k);
      s_labels[i] = part.s(j);
      u_labels[i] = part.u(j);
      if (!outcomes.empty()) outcomes[i] = part.y(j);
    }
    dataset = otfair::data::Dataset::Create(
        std::move(features), std::move(s_labels), std::move(u_labels),
        before->feature_names(), std::move(outcomes), static_cast<size_t>(s_levels),
        static_cast<size_t>(u_levels));
  }
  if (!dataset.ok()) return Fail(dataset.status());
  if (Status status = otfair::data::WriteCsv(*dataset, out_path); !status.ok())
    return Fail(status);
  std::printf("simulated %d rows (dim=%d, |S|=%d, |U|=%d, shift=%.2f) -> %s\n", rows, dim,
              s_levels, u_levels, shift, out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "--help" || command == "-h" || command == "help") {
    PrintUsage(stdout);
    return 0;
  }
  FlagParser flags(argc - 1, argv + 1);
  // Global escape hatch, resolved before any command touches a kernel.
  // The env var OTFAIR_NO_SIMD is read by the dispatch layer itself; the
  // flag covers invocations where exporting a variable is awkward (both
  // spellings accepted, matching the --s-levels convention).
  if (flags.GetBool("no-simd", false) || flags.GetBool("no_simd", false))
    otfair::common::simd::SetForceScalar(true);
  if (command == "design") return RunDesign(flags);
  if (command == "repair") return RunRepair(flags);
  if (command == "serve") return RunServe(flags);
  if (command == "loadgen") return RunLoadgenCmd(flags);
  if (command == "inspect") return RunInspect(flags);
  if (command == "drift") return RunDrift(flags);
  if (command == "simulate") return RunSimulate(flags);
  std::fprintf(stderr, "otfair: unknown command '%s'\n", command.c_str());
  return Usage();
}
