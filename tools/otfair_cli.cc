// otfair — command-line front end for the repair pipeline.
//
// Subcommands:
//   design   fit a repair plan on a labelled research CSV and save it
//   repair   apply a saved plan to an archive CSV (hard, estimated or
//            Monge-map modes)
//   inspect  print a plan artifact's structure and a CSV's fairness report
//   drift    compare an archive CSV against a plan's design distribution
//
// Examples:
//   otfair design  --research=research.csv --plan=plan.bin --n_q=50
//   otfair design  --research=research.csv --plan=plan.bin --solver=sinkhorn
//                  --epsilon=0.05
//   otfair repair  --plan=plan.bin --input=archive.csv --output=repaired.csv
//   otfair repair  --plan=plan.bin --input=archive.csv --output=o.csv
//                  --mode=quantile --estimate_labels --research=research.csv
//   otfair inspect --plan=plan.bin
//   otfair inspect --data=archive.csv
//   otfair drift   --plan=plan.bin --input=archive.csv
//
// CSV layout: header `s,u[,y],<feature names...>`, binary labels.

#include <cstdio>
#include <string>

#include "common/flags.h"
#include "common/parallel.h"
#include "core/designer.h"
#include "core/drift_monitor.h"
#include "core/label_estimator.h"
#include "core/pipeline.h"
#include "core/quantile_repair.h"
#include "core/repairer.h"
#include "data/csv.h"
#include "fairness/report.h"
#include "ot/solver.h"

namespace {

using otfair::common::FlagParser;
using otfair::common::Status;

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// Resolves the shared `--threads` flag: absent -> 0 (process default,
/// i.e. OTFAIR_THREADS or hardware concurrency); present but < 1 -> error.
/// On success the value is also installed as the process-wide default so
/// every parallel region (including solver internals) honours it.
otfair::common::Result<int> ResolveThreadsFlag(const FlagParser& flags) {
  if (!flags.Has("threads")) return 0;
  const int threads = flags.GetInt("threads", 0);
  if (threads < 1)
    return Status::InvalidArgument("--threads must be >= 1 (got " +
                                   std::to_string(threads) + ")");
  otfair::common::parallel::SetThreadCount(static_cast<size_t>(threads));
  return threads;
}

int Usage() {
  std::string solvers;
  for (const std::string& name : otfair::ot::SolverRegistry::Global().Names()) {
    if (!solvers.empty()) solvers += "|";
    solvers += name;
  }
  std::fprintf(stderr,
               "usage: otfair <design|repair|inspect|drift> [flags]\n"
               "  design  --research=R.csv --plan=P.bin [--n_q=50] [--target_t=0.5]\n"
               "          [--solver=%s] [--epsilon=0.05] [--threads=N]\n",
               solvers.c_str());
  std::fprintf(stderr,
               "  repair  --plan=P.bin --input=A.csv --output=O.csv\n"
               "          [--mode=stochastic|mean|quantile] [--strength=1.0] [--seed=N]\n"
               "          [--estimate_labels --research=R.csv]\n"
               "          [--threads=N  (stochastic/mean modes; quantile is serial)]\n"
               "  inspect --plan=P.bin | --data=D.csv\n"
               "  drift   --plan=P.bin --input=A.csv\n");
  return 2;
}

int RunDesign(const FlagParser& flags) {
  const std::string research_path = flags.GetString("research", "");
  const std::string plan_path = flags.GetString("plan", "");
  if (research_path.empty() || plan_path.empty()) return Usage();
  auto research = otfair::data::ReadCsv(research_path);
  if (!research.ok()) return Fail(research.status());

  // The OT backend is resolved by name through the registry and carried in
  // PipelineOptions, so any registered solver is reachable from here.
  otfair::core::PipelineOptions options;
  options.design.n_q = static_cast<size_t>(flags.GetInt("n_q", 50));
  options.design.target_t = flags.GetDouble("target_t", 0.5);
  auto threads = ResolveThreadsFlag(flags);
  if (!threads.ok()) return Fail(threads.status());
  options.design.threads = *threads;
  const std::string solver_name = flags.GetString("solver", "monotone");
  otfair::ot::SolverOptions solver_options;
  solver_options.sinkhorn.epsilon = flags.GetDouble("epsilon", 0.05);
  solver_options.sinkhorn.log_domain = true;
  auto solver = otfair::ot::MakeSolver(solver_name, solver_options);
  if (!solver.ok()) return Fail(solver.status());
  options.design.solver = std::move(*solver);

  auto plans = otfair::core::DesignDistributionalRepair(*research, options.design);
  if (!plans.ok()) return Fail(plans.status());
  // Fail now, not at repair time: approximate backends can produce plans
  // whose marginals are too sloppy for the loader's 1e-5 check.
  if (Status status = plans->Validate(1e-5); !status.ok())
    return Fail(Status::FailedPrecondition(
        "designed plans fail validation (" + status.message() +
        "); with --solver=sinkhorn, try a larger --epsilon"));
  if (Status status = plans->SaveToFile(plan_path); !status.ok()) return Fail(status);
  std::printf(
      "designed %zu channels (n_Q=%zu, t=%.2f, solver=%s) from %zu research rows -> %s\n",
      2 * plans->dim(), options.design.n_q, options.design.target_t,
      options.design.solver->name().c_str(), research->size(), plan_path.c_str());
  return 0;
}

int RunRepair(const FlagParser& flags) {
  const std::string plan_path = flags.GetString("plan", "");
  const std::string input_path = flags.GetString("input", "");
  const std::string output_path = flags.GetString("output", "");
  if (plan_path.empty() || input_path.empty() || output_path.empty()) return Usage();
  auto plans = otfair::core::RepairPlanSet::LoadFromFile(plan_path);
  if (!plans.ok()) return Fail(plans.status());
  auto archive = otfair::data::ReadCsv(input_path);
  if (!archive.ok()) return Fail(archive.status());

  // Optional s-label estimation from a research CSV.
  std::vector<int> labels = archive->s_labels();
  if (flags.GetBool("estimate_labels", false)) {
    const std::string research_path = flags.GetString("research", "");
    if (research_path.empty()) {
      std::fprintf(stderr, "--estimate_labels requires --research\n");
      return 2;
    }
    auto research = otfair::data::ReadCsv(research_path);
    if (!research.ok()) return Fail(research.status());
    auto estimator = otfair::core::LabelEstimator::Fit(*research);
    if (!estimator.ok()) return Fail(estimator.status());
    auto estimated = estimator->EstimateS(*archive);
    if (!estimated.ok()) return Fail(estimated.status());
    labels = std::move(*estimated);
    std::printf("estimated archive s-labels from %s\n", research_path.c_str());
  }

  const std::string mode = flags.GetString("mode", "stochastic");
  const double strength = flags.GetDouble("strength", 1.0);
  auto threads = ResolveThreadsFlag(flags);
  if (!threads.ok()) return Fail(threads.status());
  otfair::common::Result<otfair::data::Dataset> repaired(
      Status::Internal("unreachable"));
  if (mode == "quantile") {
    if (*threads > 0)
      std::fprintf(stderr, "note: quantile repair is serial; --threads has no effect\n");
    auto repairer = otfair::core::QuantileMapRepairer::Create(std::move(*plans), strength);
    if (!repairer.ok()) return Fail(repairer.status());
    repaired = repairer->RepairDatasetWithLabels(*archive, labels);
  } else if (mode == "stochastic" || mode == "mean") {
    otfair::core::RepairOptions options;
    options.seed = flags.GetUint64("seed", 0x07fa12u);
    options.strength = strength;
    options.threads = *threads;
    options.mode = mode == "mean" ? otfair::core::TransportMode::kConditionalMean
                                  : otfair::core::TransportMode::kStochastic;
    auto repairer = otfair::core::OffSampleRepairer::Create(std::move(*plans), options);
    if (!repairer.ok()) return Fail(repairer.status());
    repaired = repairer->RepairDatasetWithLabels(*archive, labels);
  } else {
    std::fprintf(stderr, "unknown --mode=%s\n", mode.c_str());
    return 2;
  }
  if (!repaired.ok()) return Fail(repaired.status());
  if (Status status = otfair::data::WriteCsv(*repaired, output_path); !status.ok())
    return Fail(status);
  std::printf("repaired %zu rows (%s mode, strength %.2f) -> %s\n", repaired->size(),
              mode.c_str(), strength, output_path.c_str());
  return 0;
}

int RunInspect(const FlagParser& flags) {
  const std::string plan_path = flags.GetString("plan", "");
  const std::string data_path = flags.GetString("data", "");
  if (!plan_path.empty()) {
    auto plans = otfair::core::RepairPlanSet::LoadFromFile(plan_path);
    if (!plans.ok()) return Fail(plans.status());
    std::printf("plan artifact %s\n  features (%zu):", plan_path.c_str(), plans->dim());
    for (const std::string& name : plans->feature_names()) std::printf(" %s", name.c_str());
    std::printf("\n  barycentre position t = %.3f\n", plans->target_t());
    for (int u = 0; u <= 1; ++u) {
      for (size_t k = 0; k < plans->dim(); ++k) {
        const auto& channel = plans->At(u, k);
        const size_t nq = channel.grid.size();
        const size_t nnz = channel.plan[0].nnz() + channel.plan[1].nnz();
        const size_t bytes = channel.plan[0].MemoryBytes() + channel.plan[1].MemoryBytes();
        std::printf(
            "  channel (u=%d, %s): n_Q=%zu, range [%.4g, %.4g], "
            "plans nnz=%zu (%.1f KiB CSR vs %.1f KiB dense)\n",
            u, plans->feature_names()[k].c_str(), nq, channel.grid.lo(), channel.grid.hi(),
            nnz, static_cast<double>(bytes) / 1024.0,
            static_cast<double>(2 * nq * nq * sizeof(double)) / 1024.0);
      }
    }
    return 0;
  }
  if (!data_path.empty()) {
    auto dataset = otfair::data::ReadCsv(data_path);
    if (!dataset.ok()) return Fail(dataset.status());
    auto report = otfair::fairness::MakeFairnessReport(*dataset);
    if (!report.ok()) return Fail(report.status());
    std::printf("%s\n%s", data_path.c_str(), report->ToString().c_str());
    return 0;
  }
  return Usage();
}

int RunDrift(const FlagParser& flags) {
  const std::string plan_path = flags.GetString("plan", "");
  const std::string input_path = flags.GetString("input", "");
  if (plan_path.empty() || input_path.empty()) return Usage();
  auto plans = otfair::core::RepairPlanSet::LoadFromFile(plan_path);
  if (!plans.ok()) return Fail(plans.status());
  auto archive = otfair::data::ReadCsv(input_path);
  if (!archive.ok()) return Fail(archive.status());
  if (archive->dim() != plans->dim())
    return Fail(Status::InvalidArgument("archive/plan dimensionality mismatch"));
  auto monitor = otfair::core::DriftMonitor::Create(*plans);
  if (!monitor.ok()) return Fail(monitor.status());
  for (size_t i = 0; i < archive->size(); ++i) {
    for (size_t k = 0; k < archive->dim(); ++k)
      monitor->Observe(archive->u(i), archive->s(i), k, archive->feature(i, k));
  }
  const otfair::core::DriftReport report = monitor->Report();
  std::printf("%s", report.ToString().c_str());
  return report.drifted ? 3 : 0;  // non-zero exit signals drift to scripts
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  FlagParser flags(argc - 1, argv + 1);
  if (command == "design") return RunDesign(flags);
  if (command == "repair") return RunRepair(flags);
  if (command == "inspect") return RunInspect(flags);
  if (command == "drift") return RunDrift(flags);
  return Usage();
}
