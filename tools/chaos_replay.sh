#!/usr/bin/env bash
# Kill-9 crash-recovery harness for the serve path. The in-process chaos
# suite (tests/integration/chaos_test.cc) simulates crashes by dropping
# the service object; this script kills the REAL process with SIGKILL —
# no destructors, no atexit, no final checkpoint — restarts it with
# --recover, and proves the recovered process answers the same repair
# requests byte-for-byte identically to an uninterrupted run.
#
# Usage: tools/chaos_replay.sh [build_dir]
#
# Exits 0 when every assertion holds:
#   1. a kill -9'd server leaves only intact checkpoints behind,
#   2. `serve --recover` comes back from the newest one,
#   3. post-recovery repair output is byte-identical to the output an
#      uncrashed server produces for the same requests (determinism
#      contract: repairs key on (session, row), not process history),
#   4. the recovered server keeps checkpointing (generations advance),
#   5. drift/sketch state survives: values_observed after recovery
#      matches what the crashed server had checkpointed.

set -u -o pipefail

BUILD_DIR="${1:-build}"
CLI="$BUILD_DIR/tools/otfair"
[[ -x "$CLI" ]] || { echo "chaos_replay: $CLI not found (build first)" >&2; exit 2; }

WORK="$(mktemp -d "${TMPDIR:-/tmp}/otfair_chaos.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT
CKPT="$WORK/ckpt"
mkdir -p "$CKPT"

fail() { echo "chaos_replay: FAIL: $*" >&2; exit 1; }

# --- Fixture: a small design + a batch of repair request lines ----------
"$CLI" simulate --rows=400 --out="$WORK/research.csv" --seed=11 >/dev/null \
  || fail "simulate research"
"$CLI" design --research="$WORK/research.csv" --plan="$WORK/plan.bin" --n_q=16 >/dev/null \
  || fail "design"

make_requests() {  # make_requests <first_row> <count> <file>
  local first=$1 count=$2 out=$3
  : > "$out"
  for ((i = 0; i < count; ++i)); do
    local row=$((first + i))
    # Deterministic pseudo-features; u/s cycle through the 2x2 grid.
    echo "repair 7 $row $((row % 2)) $(((row / 2) % 2)) $row.25 -$row.5" >> "$out"
  done
}
make_requests 0   200 "$WORK/phase1.req"
make_requests 200 100 "$WORK/phase2.req"

SERVE_FLAGS=(--plan="$WORK/plan.bin" --seed=99 --checkpoint_dir="$CKPT"
             --checkpoint_interval_ms=100000 --sketch_every=4)

# --- Reference run: no crash, phase1 + checkpoint + phase2 --------------
{ cat "$WORK/phase1.req"; echo "checkpoint"; cat "$WORK/phase2.req"; echo "quit"; } \
  | "$CLI" serve "${SERVE_FLAGS[@]}" > "$WORK/reference.out" 2>/dev/null \
  || fail "reference serve run"
grep '^ok 7 ' "$WORK/reference.out" > "$WORK/reference.rows"
[[ $(wc -l < "$WORK/reference.rows") -eq 300 ]] || fail "reference run repaired $(wc -l < "$WORK/reference.rows") rows, want 300"
rm -f "$CKPT"/*  # reference checkpoints are not part of the experiment

# --- Crash run: phase1, forced checkpoint, then SIGKILL mid-flight ------
mkfifo "$WORK/in.pipe"
"$CLI" serve "${SERVE_FLAGS[@]}" < "$WORK/in.pipe" > "$WORK/crash.out" 2>/dev/null &
SERVER=$!
exec 3> "$WORK/in.pipe"
cat "$WORK/phase1.req" >&3
echo "checkpoint" >&3
echo "health" >&3
# Wait until the checkpoint ack and health line land, then pull the plug.
for _ in $(seq 100); do
  grep -q '^ok checkpoint ' "$WORK/crash.out" && grep -q 'values_observed' "$WORK/crash.out" && break
  sleep 0.1
done
grep -q '^ok checkpoint ' "$WORK/crash.out" || fail "crashed server never acked the checkpoint"
OBSERVED_BEFORE=$(grep -o '"values_observed":[0-9]*' "$WORK/crash.out" | tail -1 | cut -d: -f2)
kill -9 "$SERVER" 2>/dev/null
wait "$SERVER" 2>/dev/null
exec 3>&-
ls "$CKPT"/checkpoint-*.otcp >/dev/null 2>&1 || fail "no checkpoint survived the kill"

# 1. Every surviving checkpoint file is intact (atomic-write contract).
for f in "$CKPT"/checkpoint-*.otcp; do
  "$CLI" inspect --checkpoint="$f" >/dev/null 2>&1 || fail "torn checkpoint after kill -9: $f"
done

# --- Recovery run: --recover, then replay phase2 ------------------------
{ echo "health"; cat "$WORK/phase2.req"; echo "checkpoint"; echo "quit"; } \
  | "$CLI" serve "${SERVE_FLAGS[@]}" --recover > "$WORK/recovered.out" 2> "$WORK/recovered.err" \
  || fail "recovered serve run exited nonzero"

# 2. It actually recovered (didn't cold-start).
grep -q 'recovered checkpoint generation' "$WORK/recovered.err" \
  || fail "server did not report recovering a checkpoint"

# 5. Sketch/drift continuity: observed count picked up where the crash left off.
OBSERVED_AFTER=$(grep -o '"values_observed":[0-9]*' "$WORK/recovered.out" | head -1 | cut -d: -f2)
[[ "$OBSERVED_AFTER" == "$OBSERVED_BEFORE" ]] \
  || fail "values_observed after recovery: $OBSERVED_AFTER, want $OBSERVED_BEFORE"

# 3. Byte-identical repairs for the post-crash phase.
grep '^ok 7 ' "$WORK/recovered.out" > "$WORK/recovered.rows"
tail -100 "$WORK/reference.rows" > "$WORK/reference.phase2"
diff -q "$WORK/reference.phase2" "$WORK/recovered.rows" >/dev/null \
  || fail "post-recovery repairs differ from the uncrashed run"

# 4. Checkpointing continued past the recovered generation.
LAST=$(ls "$CKPT"/checkpoint-*.otcp | sort | tail -1)
"$CLI" inspect --checkpoint="$LAST" >/dev/null 2>&1 || fail "post-recovery checkpoint is torn"
N_CKPT=$(ls "$CKPT"/checkpoint-*.otcp | wc -l)
[[ "$N_CKPT" -ge 2 ]] || fail "recovered server never wrote a new checkpoint"

echo "chaos_replay: PASS (kill -9 -> recover: $OBSERVED_BEFORE values carried, ${N_CKPT} checkpoints intact, 100 post-crash repairs byte-identical)"
