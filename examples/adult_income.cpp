// Adult-income scenario (paper §V-B): repair gender dependence of the
// {age, hours/week} features within education strata, then show the effect
// on a downstream income classifier (disparate impact / accuracy).
//
// Uses the synthetic Adult-like generator by default (see DESIGN.md §3);
// pass --csv=<path> to run on a real, preprocessed Adult CSV with header
// `s,u[,y],age,hours_per_week`.
//
// Run:  ./build/examples/adult_income [--n_research=10000] [--n_archive=35222]
//           [--n_q=250] [--seed=11] [--estimate_labels] [--csv=path]

#include <cstdio>

#include "common/flags.h"
#include "common/rng.h"
#include "core/pipeline.h"
#include "data/adult_like.h"
#include "data/csv.h"
#include "fairness/disparate_impact.h"
#include "fairness/emetric.h"
#include "fairness/logistic.h"

using otfair::common::FlagParser;
using otfair::common::Rng;

namespace {

void PrintFeatureE(const char* tag, const otfair::data::Dataset& dataset) {
  std::printf("%-28s", tag);
  for (size_t k = 0; k < dataset.dim(); ++k) {
    auto e = otfair::fairness::FeatureE(dataset, k);
    std::printf("  E[%s]=%7.4f", dataset.feature_names()[k].c_str(), e.ok() ? *e : -1.0);
  }
  std::printf("\n");
}

void PrintClassifierFairness(const char* tag, const otfair::data::Dataset& dataset) {
  auto model = otfair::fairness::LogisticRegression::FitDataset(dataset);
  if (!model.ok()) {
    std::printf("%-28s  (no outcome column; classifier step skipped)\n", tag);
    return;
  }
  const auto preds = model->ClassifyDataset(dataset);
  auto acc = otfair::fairness::Accuracy(dataset, preds);
  std::printf("%-28s  accuracy=%.3f", tag, acc.ok() ? *acc : -1.0);
  for (int u = 0; u <= 1; ++u) {
    auto di = otfair::fairness::DisparateImpact(dataset, preds, u);
    std::printf("  DI(u=%d)=%.3f", u, di.ok() ? *di : -1.0);
  }
  std::printf("   (DI > 0.8 passes the four-fifths rule)\n");
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const size_t n_research = static_cast<size_t>(flags.GetInt("n_research", 10000));
  const size_t n_archive = static_cast<size_t>(flags.GetInt("n_archive", 35222));
  const size_t n_q = static_cast<size_t>(flags.GetInt("n_q", 250));
  const uint64_t seed = flags.GetUint64("seed", 11);
  const bool estimate_labels = flags.GetBool("estimate_labels", false);
  const std::string csv = flags.GetString("csv", "");
  if (auto status = flags.Validate(
          {"n_research", "n_archive", "n_q", "seed", "estimate_labels", "csv"});
      !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  Rng rng(seed);
  otfair::data::Dataset research;
  otfair::data::Dataset archive;
  if (!csv.empty()) {
    auto full = otfair::data::ReadCsv(csv);
    if (!full.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", csv.c_str(),
                   full.status().ToString().c_str());
      return 1;
    }
    auto split = otfair::data::SplitResearchArchive(
        *full, std::min(n_research, full->size() - 1), rng);
    if (!split.ok()) {
      std::fprintf(stderr, "%s\n", split.status().ToString().c_str());
      return 1;
    }
    research = std::move(split->first);
    archive = std::move(split->second);
    std::printf("Loaded %zu rows from %s\n", research.size() + archive.size(), csv.c_str());
  } else {
    // Synthetic Adult-like substitute; the archive carries mild drift, as
    // the paper observes in the real data (§V-B remark (i)).
    auto r = otfair::data::GenerateAdultLike(n_research, rng, {.drift = 0.0});
    auto a = otfair::data::GenerateAdultLike(n_archive, rng, {.drift = 0.15});
    if (!r.ok() || !a.ok()) {
      std::fprintf(stderr, "generation failed\n");
      return 1;
    }
    research = std::move(*r);
    archive = std::move(*a);
    std::printf("Generated Adult-like data (s = male, u = college+): "
                "n_R=%zu, n_A=%zu\n", research.size(), archive.size());
  }

  std::printf("\n-- s|u-dependence (symmetrized-KL E metric, lower = fairer) --\n");
  PrintFeatureE("research, unrepaired", research);
  PrintFeatureE("archive,  unrepaired", archive);

  otfair::core::PipelineOptions options;
  options.design.n_q = n_q;
  options.repair.seed = seed;
  options.estimate_archive_labels = estimate_labels;
  auto result = otfair::core::RunRepairPipeline(research, archive, options);
  if (!result.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  PrintFeatureE("research, repaired", result->repaired_research);
  PrintFeatureE("archive,  repaired", result->repaired_archive);
  if (result->label_estimate_accuracy.has_value()) {
    std::printf("\narchival s-labels were re-estimated per u-stratum "
                "(GMM MAP); agreement with recorded labels: %.3f\n",
                *result->label_estimate_accuracy);
  }

  std::printf("\n-- downstream income classifier g(X) --\n");
  PrintClassifierFairness("trained on unrepaired", archive);
  PrintClassifierFairness("trained on repaired", result->repaired_archive);
  return 0;
}
