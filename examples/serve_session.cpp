// Serving-layer walkthrough: designs a plan on simulated research data,
// stands up a serve::RepairService behind a micro-batching Batcher, runs
// two concurrent client sessions against it, hot-swaps the plan
// mid-stream, and prints the metrics/health snapshots — the in-process
// equivalent of `otfair serve`.
//
// Run:  ./serve_session [--rows=20000] [--sessions=2] [--threads=2]

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "common/rng.h"
#include "core/designer.h"
#include "serve/batcher.h"
#include "serve/repair_service.h"
#include "sim/gaussian_mixture.h"

int main(int argc, char** argv) {
  otfair::common::FlagParser flags(argc, argv);
  const size_t rows = static_cast<size_t>(flags.GetInt("rows", 20000));
  const size_t sessions = static_cast<size_t>(flags.GetInt("sessions", 2));
  const int threads = flags.GetInt("threads", 2);

  // Design once on a small research set (the paper's Algorithm 1)...
  otfair::common::Rng rng(7);
  auto research = otfair::sim::SimulateGaussianMixture(
      1000, otfair::sim::GaussianSimConfig::PaperDefault(), rng);
  auto archive = otfair::sim::SimulateGaussianMixture(
      rows, otfair::sim::GaussianSimConfig::PaperDefault(), rng);
  if (!research.ok() || !archive.ok()) {
    std::fprintf(stderr, "simulation failed\n");
    return 1;
  }
  auto plans = otfair::core::DesignDistributionalRepair(*research, {});
  if (!plans.ok()) {
    std::fprintf(stderr, "design failed: %s\n", plans.status().ToString().c_str());
    return 1;
  }

  // ...then serve the archival stream from a long-lived service.
  otfair::serve::ServiceOptions service_options;
  service_options.threads = threads;
  auto service = otfair::serve::RepairService::Create(*plans, service_options);
  if (!service.ok()) {
    std::fprintf(stderr, "service failed: %s\n", service.status().ToString().c_str());
    return 1;
  }
  std::atomic<uint64_t> delivered{0};
  otfair::serve::Batcher batcher(
      service->get(), {},
      [&](const otfair::serve::RowResponse& response) {
        if (response.status.ok()) delivered.fetch_add(1, std::memory_order_relaxed);
      });

  std::vector<std::thread> clients;
  for (size_t session = 0; session < sessions; ++session) {
    clients.emplace_back([&, session] {
      for (size_t i = 0; i < archive->size(); ++i) {
        otfair::serve::RowRequest request;
        request.session_id = session;
        request.row_index = i;
        request.u = archive->u(i);
        request.s = archive->s(i);
        request.features = archive->Row(i);
        while (!batcher.Submit(std::move(request)).ok()) batcher.Flush();
      }
    });
  }

  // Hot-swap the plan while the sessions stream: the atomic snapshot swap
  // means no request is dropped and — because repair randomness is a pure
  // function of (seed, session, row) — the outputs do not change either.
  if (!(*service)->ReloadPlan(std::move(*plans)).ok()) {
    std::fprintf(stderr, "reload failed\n");
    return 1;
  }

  for (std::thread& client : clients) client.join();
  batcher.Close();

  const auto metrics = (*service)->metrics().Snapshot(batcher.queue_depth());
  const auto health = (*service)->Health();
  std::printf("delivered %llu rows across %zu sessions (plan v%llu)\n",
              static_cast<unsigned long long>(delivered.load()), sessions,
              static_cast<unsigned long long>((*service)->plan_version()));
  std::printf("metrics: %s\n", metrics.ToJson().c_str());
  std::printf("health:  %s\n", health.ToJson().c_str());
  return health.drifted ? 3 : 0;
}
