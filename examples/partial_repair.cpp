// Partial repair: the fairness-vs-damage trade-off the paper flags as
// future work (§VI). Two knobs are swept:
//
//   * strength lambda: x' = (1 - lambda) x + lambda T(x) — how far each
//     record moves toward its transported target;
//   * transport mode: the paper's stochastic mass-split vs a deterministic
//     conditional-mean (Monge-style) map.
//
// For every setting we report the residual conditional dependence E and
// the mean displacement (data damage).
//
// Run:  ./build/examples/partial_repair [--n_archive=20000] [--seed=31]

#include <cstdio>

#include "common/flags.h"
#include "common/rng.h"
#include "core/designer.h"
#include "core/repairer.h"
#include "fairness/damage.h"
#include "fairness/emetric.h"
#include "sim/gaussian_mixture.h"

using otfair::common::FlagParser;
using otfair::common::Rng;

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const size_t n_archive = static_cast<size_t>(flags.GetInt("n_archive", 20000));
  const uint64_t seed = flags.GetUint64("seed", 31);
  if (auto status = flags.Validate({"n_archive", "seed"}); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  Rng rng(seed);
  const auto config = otfair::sim::GaussianSimConfig::PaperDefault();
  auto research = otfair::sim::SimulateGaussianMixture(800, config, rng);
  auto archive = otfair::sim::SimulateGaussianMixture(n_archive, config, rng);
  if (!research.ok() || !archive.ok()) return 1;

  auto plans = otfair::core::DesignDistributionalRepair(*research, {});
  if (!plans.ok()) {
    std::fprintf(stderr, "design failed: %s\n", plans.status().ToString().c_str());
    return 1;
  }

  auto e_unrepaired = otfair::fairness::AggregateE(*archive);
  std::printf("unrepaired archive: E = %.4f (n = %zu)\n\n", *e_unrepaired, archive->size());
  std::printf("%-18s %-10s %-12s %-16s\n", "mode", "lambda", "E (archive)", "mean |x'-x| (L2)");

  for (const auto mode : {otfair::core::TransportMode::kStochastic,
                          otfair::core::TransportMode::kConditionalMean}) {
    for (const double lambda : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      otfair::core::RepairOptions options;
      options.mode = mode;
      options.strength = lambda;
      options.seed = seed;
      auto repairer = otfair::core::OffSampleRepairer::Create(*plans, options);
      if (!repairer.ok()) return 1;
      auto repaired = repairer->RepairDataset(*archive);
      if (!repaired.ok()) return 1;
      auto e = otfair::fairness::AggregateE(*repaired);
      auto damage = otfair::fairness::ComputeDamage(*archive, *repaired);
      std::printf("%-18s %-10.2f %-12.4f %-16.4f\n",
                  mode == otfair::core::TransportMode::kStochastic ? "stochastic"
                                                                   : "conditional-mean",
                  lambda, e.ok() ? *e : -1.0,
                  damage.ok() ? damage->mean_l2_displacement : -1.0);
    }
  }

  std::printf("\nReading the table: lambda = 1 with stochastic transport is the\n"
              "paper's full repair; smaller lambda trades residual unfairness for\n"
              "less data damage. The conditional-mean map damages less per unit of\n"
              "fairness at low lambda but cannot match the target distribution\n"
              "exactly (it collapses the mass splitting).\n");
  return 0;
}
