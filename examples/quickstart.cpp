// Quickstart: the five-minute tour of the otfair public API.
//
// 1. Simulate labelled data (the paper's §V-A bivariate Gaussian setting).
// 2. Split into a small labelled *research* set and a large *archive*.
// 3. Design the distributional OT repair on the research data (Algorithm 1).
// 4. Repair both sets (Algorithm 2) and measure the E fairness metric.
//
// Run:  ./build/examples/quickstart [--n_research=500] [--n_archive=5000]
//                                   [--n_q=50] [--seed=7]

#include <cstdio>

#include "common/flags.h"
#include "common/rng.h"
#include "core/pipeline.h"
#include "fairness/emetric.h"
#include "fairness/report.h"
#include "sim/gaussian_mixture.h"

using otfair::common::FlagParser;
using otfair::common::Rng;

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const size_t n_research = static_cast<size_t>(flags.GetInt("n_research", 500));
  const size_t n_archive = static_cast<size_t>(flags.GetInt("n_archive", 5000));
  const size_t n_q = static_cast<size_t>(flags.GetInt("n_q", 50));
  const uint64_t seed = flags.GetUint64("seed", 7);
  if (auto status = flags.Validate({"n_research", "n_archive", "n_q", "seed"}); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  // (1) Simulate the paper's mixture: two u-strata, two s-classes each.
  Rng rng(seed);
  const auto config = otfair::sim::GaussianSimConfig::PaperDefault();
  auto research = otfair::sim::SimulateGaussianMixture(n_research, config, rng);
  auto archive = otfair::sim::SimulateGaussianMixture(n_archive, config, rng);
  if (!research.ok() || !archive.ok()) {
    std::fprintf(stderr, "simulation failed\n");
    return 1;
  }

  std::printf("== Before repair ==\n");
  std::printf("research: %s", otfair::fairness::MakeFairnessReport(*research)->ToString().c_str());
  std::printf("archive:  %s", otfair::fairness::MakeFairnessReport(*archive)->ToString().c_str());

  // (2)+(3)+(4) Design on research, repair both sets.
  otfair::core::PipelineOptions options;
  options.design.n_q = n_q;
  options.repair.seed = seed;
  auto result = otfair::core::RunRepairPipeline(*research, *archive, options);
  if (!result.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("\n== After distributional OT repair (t = 0.5 barycentre) ==\n");
  std::printf("research (on-sample):  %s",
              otfair::fairness::MakeFairnessReport(result->repaired_research)->ToString().c_str());
  std::printf("archive (off-sample):  %s",
              otfair::fairness::MakeFairnessReport(result->repaired_archive)->ToString().c_str());
  std::printf("\nrepaired %zu values (%zu clamped to the research range)\n",
              result->stats.values_repaired, result->stats.values_clamped);
  std::printf("\nThe repair was *designed* on %zu research rows only, then applied\n"
              "off-sample to %zu archival rows — the paper's headline capability.\n",
              n_research, n_archive);
  return 0;
}
