// Streaming (torrent) repair: the deployment mode the paper's off-sample
// design exists for (§VI "torrents of archival data").
//
// The repair plan is designed once on a small research set, persisted to a
// binary artifact, re-loaded (as an edge service would), and then archival
// records are repaired one at a time through RepairValue — O(1) per value,
// independent of how many records have streamed past. Throughput is
// reported, and the streamed records' E metric is compared before/after.
//
// Run:  ./build/examples/streaming_repair [--records=1000000] [--n_q=50]
//                                         [--seed=21]

#include <cstdio>
#include <string>

#include "common/flags.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/designer.h"
#include "core/repairer.h"
#include "fairness/emetric.h"
#include "sim/gaussian_mixture.h"

using otfair::common::FlagParser;
using otfair::common::Rng;
using otfair::common::Timer;

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const size_t records = static_cast<size_t>(flags.GetInt("records", 1000000));
  const size_t n_q = static_cast<size_t>(flags.GetInt("n_q", 50));
  const uint64_t seed = flags.GetUint64("seed", 21);
  if (auto status = flags.Validate({"records", "n_q", "seed"}); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  // Design once, on 500 research rows.
  Rng rng(seed);
  const auto config = otfair::sim::GaussianSimConfig::PaperDefault();
  auto research = otfair::sim::SimulateGaussianMixture(500, config, rng);
  if (!research.ok()) return 1;
  otfair::core::DesignOptions design;
  design.n_q = n_q;
  Timer design_timer;
  auto plans = otfair::core::DesignDistributionalRepair(*research, design);
  if (!plans.ok()) {
    std::fprintf(stderr, "design failed: %s\n", plans.status().ToString().c_str());
    return 1;
  }
  std::printf("designed %zu OT plans (n_Q=%zu) on %zu research rows in %.1f ms\n",
              4 * plans->dim(), n_q, research->size(), design_timer.ElapsedMillis());

  // Ship the plan artifact and load it back — the edge-deployment story.
  const std::string artifact = "/tmp/otfair_streaming_plan.bin";
  if (auto status = plans->SaveToFile(artifact); !status.ok()) {
    std::fprintf(stderr, "save failed: %s\n", status.ToString().c_str());
    return 1;
  }
  auto loaded = otfair::core::RepairPlanSet::LoadFromFile(artifact);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("plan artifact round-tripped through %s\n", artifact.c_str());

  otfair::core::RepairOptions repair;
  repair.seed = seed;
  auto repairer = otfair::core::OffSampleRepairer::Create(std::move(*loaded), repair);
  if (!repairer.ok()) return 1;

  // Stream records. Accumulate per-(u,s) sums so we can sanity-check the
  // output without storing the torrent.
  Rng stream_rng(seed + 1);
  Timer stream_timer;
  double checksum = 0.0;
  for (size_t i = 0; i < records; ++i) {
    const int u = stream_rng.Bernoulli(config.pr_u0) ? 0 : 1;
    const double pr_s0 = (u == 0) ? config.pr_s0_given_u0 : config.pr_s0_given_u1;
    const int s = stream_rng.Bernoulli(pr_s0) ? 0 : 1;
    for (size_t k = 0; k < 2; ++k) {
      const double x = stream_rng.Normal(config.mean[u][s][k], config.sigma);
      checksum += repairer->RepairValue(u, s, k, x);
    }
  }
  const double seconds = stream_timer.ElapsedSeconds();
  std::printf("repaired %zu records (%zu values) in %.2f s  ->  %.2f M records/s\n",
              records, records * 2, seconds, static_cast<double>(records) / seconds / 1e6);
  std::printf("(checksum %.3f; clamped values: %zu of %zu)\n", checksum,
              repairer->stats().values_clamped, repairer->stats().values_repaired);

  // Verify fairness on a held-out batch repaired by the same (streaming)
  // repairer.
  Rng verify_rng(seed + 2);
  auto batch = otfair::sim::SimulateGaussianMixture(20000, config, verify_rng);
  if (!batch.ok()) return 1;
  auto repaired = repairer->RepairDataset(*batch);
  if (!repaired.ok()) return 1;
  auto e_before = otfair::fairness::AggregateE(*batch);
  auto e_after = otfair::fairness::AggregateE(*repaired);
  std::printf("held-out batch: E %.4f -> %.4f (%.0fx reduction)\n", *e_before, *e_after,
              *e_before / *e_after);
  return 0;
}
