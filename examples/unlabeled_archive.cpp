// Production-ops scenario: repairing an archival stream whose protected
// attribute S was never recorded (the common case the paper highlights in
// §VI), while watching for stationarity violations.
//
//  1. Fit per-u mixture models on the labelled research set and derive
//     archival posteriors Pr[s = 1 | x, u]  (core::LabelEstimator).
//  2. Repair the archive three ways and compare: with the ground-truth
//     labels (oracle), with hard MAP label estimates, and with soft
//     posterior-weighted repair (Monge/quantile map).
//  3. Run a DriftMonitor over a later, drifted archive batch and show the
//     alarm that tells the operator to re-collect research data.
//
// Run:  ./build/examples/unlabeled_archive [--n_research=2000]
//           [--n_archive=8000] [--seed=41]

#include <cstdio>

#include "common/flags.h"
#include "common/rng.h"
#include "core/designer.h"
#include "core/drift_monitor.h"
#include "core/label_estimator.h"
#include "core/quantile_repair.h"
#include "core/repairer.h"
#include "fairness/emetric.h"
#include "sim/gaussian_mixture.h"

using otfair::common::FlagParser;
using otfair::common::Rng;

namespace {

void PrintE(const char* tag, const otfair::data::Dataset& dataset) {
  auto e = otfair::fairness::AggregateE(dataset);
  std::printf("  %-44s E = %.4f\n", tag, e.ok() ? *e : -1.0);
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const size_t n_research = static_cast<size_t>(flags.GetInt("n_research", 2000));
  const size_t n_archive = static_cast<size_t>(flags.GetInt("n_archive", 8000));
  const uint64_t seed = flags.GetUint64("seed", 41);
  if (auto status = flags.Validate({"n_research", "n_archive", "seed"}); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  Rng rng(seed);
  const auto config = otfair::sim::GaussianSimConfig::PaperDefault();
  auto research = otfair::sim::SimulateGaussianMixture(n_research, config, rng);
  auto archive = otfair::sim::SimulateGaussianMixture(n_archive, config, rng);
  if (!research.ok() || !archive.ok()) return 1;

  auto plans = otfair::core::DesignDistributionalRepair(*research, {});
  if (!plans.ok()) {
    std::fprintf(stderr, "design failed: %s\n", plans.status().ToString().c_str());
    return 1;
  }
  auto estimator = otfair::core::LabelEstimator::Fit(*research);
  if (!estimator.ok()) return 1;
  auto map_labels = estimator->EstimateS(*archive);
  auto posteriors = estimator->PosteriorsS1(*archive);
  if (!map_labels.ok() || !posteriors.ok()) return 1;
  auto label_accuracy = estimator->AccuracyOn(*archive);
  std::printf("archive S-labels withheld; GMM MAP label accuracy vs truth: %.3f\n\n",
              label_accuracy.ok() ? *label_accuracy : -1.0);

  std::printf("-- residual conditional dependence after repair --\n");
  PrintE("unrepaired archive", *archive);

  otfair::core::RepairOptions options;
  options.seed = seed;
  auto oracle = otfair::core::OffSampleRepairer::Create(*plans, options);
  auto hard = otfair::core::OffSampleRepairer::Create(*plans, options);
  auto monge = otfair::core::QuantileMapRepairer::Create(*plans);
  if (!oracle.ok() || !hard.ok() || !monge.ok()) return 1;

  auto repaired_oracle = oracle->RepairDataset(*archive);
  auto repaired_hard = hard->RepairDatasetWithLabels(*archive, *map_labels);
  auto repaired_soft = monge->RepairDatasetSoft(*archive, *posteriors);
  if (!repaired_oracle.ok() || !repaired_hard.ok() || !repaired_soft.ok()) return 1;
  PrintE("repaired with true labels (oracle)", *repaired_oracle);
  PrintE("repaired with MAP label estimates", *repaired_hard);
  PrintE("repaired with posterior-soft Monge map", *repaired_soft);

  // Drift monitoring on a later batch drawn from a shifted population.
  std::printf("\n-- drift monitor over a later archive batch --\n");
  auto monitor = otfair::core::DriftMonitor::Create(*plans);
  if (!monitor.ok()) return 1;

  Rng stream_rng(seed + 1);
  auto same = otfair::sim::SimulateGaussianMixture(5000, config, stream_rng);
  for (size_t i = 0; i < same->size(); ++i) {
    for (size_t k = 0; k < 2; ++k)
      monitor->Observe(same->u(i), same->s(i), k, same->feature(i, k));
  }
  std::printf("batch 1 (stationary): %s", monitor->Report().drifted ? "DRIFT\n" : "ok\n");

  monitor->Reset();
  otfair::sim::GaussianSimConfig drifted = config;
  for (int u = 0; u <= 1; ++u) {
    for (int s = 0; s <= 1; ++s) {
      drifted.mean[u][s][0] += 1.2;  // population shifted in channel 0
    }
  }
  auto later = otfair::sim::SimulateGaussianMixture(5000, drifted, stream_rng);
  for (size_t i = 0; i < later->size(); ++i) {
    for (size_t k = 0; k < 2; ++k)
      monitor->Observe(later->u(i), later->s(i), k, later->feature(i, k));
  }
  const otfair::core::DriftReport report = monitor->Report();
  std::printf("batch 2 (mean-shifted): %s", report.drifted ? "DRIFT DETECTED\n" : "ok\n");
  std::printf("  worst normalized W1 = %.3f, worst out-of-range rate = %.3f\n",
              report.worst_w1, report.worst_out_of_range);
  std::printf("\nOn drift the operator should re-collect labelled research data and\n"
              "re-run the design step; the stationarity assumption (paper §IV) no\n"
              "longer holds for the incoming stream.\n");
  return 0;
}
