# Resolves GoogleTest for the test suite, in order of preference:
#
#   1. An installed GTest (system package, conda, vcpkg, ...) via
#      find_package — works offline and is the common case on dev boxes.
#   2. Distro sources under /usr/src/googletest (Debian/Ubuntu
#      `libgtest-dev` ships sources only on older releases).
#   3. FetchContent from the upstream repository — covers fresh CI
#      machines with network access but no preinstalled GTest.
#
# Defines the imported targets GTest::gtest and GTest::gtest_main either
# way, plus `otfair_gtest_discover` as a guarded alias for
# gtest_discover_tests.

include(GoogleTest)

find_package(GTest QUIET)

if(GTest_FOUND)
  message(STATUS "otfair: using installed GTest (${GTest_DIR})")
elseif(EXISTS /usr/src/googletest/CMakeLists.txt)
  message(STATUS "otfair: building GTest from /usr/src/googletest")
  set(BUILD_GMOCK OFF CACHE BOOL "" FORCE)
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  add_subdirectory(/usr/src/googletest ${CMAKE_BINARY_DIR}/_deps/googletest-distro
                   EXCLUDE_FROM_ALL)
  if(NOT TARGET GTest::gtest)
    add_library(GTest::gtest ALIAS gtest)
    add_library(GTest::gtest_main ALIAS gtest_main)
  endif()
else()
  message(STATUS "otfair: fetching GTest from upstream (no local copy found)")
  include(FetchContent)
  FetchContent_Declare(
    googletest
    URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.zip
    URL_HASH SHA256=1f357c27ca988c3f7c6b4bf68a9395005ac6761f034046e9dde0896e3aba00e4)
  set(BUILD_GMOCK OFF CACHE BOOL "" FORCE)
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  # Honour the parent project's runtime on MSVC.
  set(gtest_force_shared_crt ON CACHE BOOL "" FORCE)
  FetchContent_MakeAvailable(googletest)
endif()
